//===- memory/pool_allocator.cpp - Concurrent pool allocation -------------===//

#include "memory/pool_allocator.h"

#include <cassert>
#include <cstdlib>

using namespace aspen;

static size_t roundUp(size_t X, size_t A) { return (X + A - 1) / A * A; }

FixedPool::FixedPool(size_t Bytes)
    : EltBytes(roundUp(Bytes < sizeof(void *) ? sizeof(void *) : Bytes,
                       alignof(void *))),
      Locals(static_cast<size_t>(maxContexts())) {
  // Slabs of roughly 256KB amortize the global lock.
  SlabElts = (256 * 1024) / EltBytes;
  if (SlabElts < 64)
    SlabElts = 64;
}

FixedPool::~FixedPool() {
  for (char *A : Arenas)
    std::free(A);
}

void FixedPool::refill(Local &L) {
  std::lock_guard<std::mutex> Lock(GlobalM);
  if (!GlobalSegments.empty()) {
    Segment S = GlobalSegments.back();
    GlobalSegments.pop_back();
    L.Head = S.Head;
    L.Count = S.Count;
    return;
  }
  char *Arena = static_cast<char *>(std::malloc(EltBytes * SlabElts));
  assert(Arena && "pool arena allocation failed");
  Arenas.push_back(Arena);
  // Thread the free list through the slab.
  for (size_t I = 0; I + 1 < SlabElts; ++I)
    *reinterpret_cast<void **>(Arena + I * EltBytes) =
        Arena + (I + 1) * EltBytes;
  *reinterpret_cast<void **>(Arena + (SlabElts - 1) * EltBytes) = nullptr;
  L.Head = Arena;
  L.Count = SlabElts;
}

void FixedPool::spill(Local &L) {
  // Detach SlabElts blocks from the local list and publish them.
  void *Head = L.Head;
  void *Cur = Head;
  for (size_t I = 1; I < SlabElts; ++I)
    Cur = *reinterpret_cast<void **>(Cur);
  L.Head = *reinterpret_cast<void **>(Cur);
  *reinterpret_cast<void **>(Cur) = nullptr;
  L.Count -= SlabElts;
  std::lock_guard<std::mutex> Lock(GlobalM);
  GlobalSegments.push_back(Segment{Head, SlabElts});
}

void *FixedPool::alloc() {
  Local &L = Locals[static_cast<size_t>(workerId())];
  if (!L.Head)
    refill(L);
  void *P = L.Head;
  L.Head = *reinterpret_cast<void **>(P);
  --L.Count;
  ++L.Net;
  return P;
}

void FixedPool::free(void *P) {
  Local &L = Locals[static_cast<size_t>(workerId())];
  *reinterpret_cast<void **>(P) = L.Head;
  L.Head = P;
  ++L.Count;
  --L.Net;
  if (L.Count >= 2 * SlabElts)
    spill(L);
}

int64_t FixedPool::liveCount() const {
  int64_t Total = 0;
  for (const Local &L : Locals)
    Total += L.Net;
  return Total;
}

namespace {

struct PoolRegistry {
  std::mutex M;
  std::vector<FixedPool *> Pools;
};

PoolRegistry &registry() {
  static PoolRegistry R;
  return R;
}

struct alignas(64) ByteCounter {
  int64_t Bytes = 0;
};

std::vector<ByteCounter> &byteCounters() {
  static std::vector<ByteCounter> C(static_cast<size_t>(maxContexts()));
  return C;
}

} // namespace

void aspen::detail::registerPool(FixedPool *P) {
  PoolRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  R.Pools.push_back(P);
}

int64_t aspen::totalPoolLiveBytes() {
  PoolRegistry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  int64_t Total = 0;
  for (FixedPool *P : R.Pools)
    Total += P->liveCount() * static_cast<int64_t>(P->eltBytes());
  return Total;
}

void *aspen::countedAlloc(size_t Bytes) {
  byteCounters()[static_cast<size_t>(workerId())].Bytes +=
      static_cast<int64_t>(Bytes);
  return std::malloc(Bytes);
}

void aspen::countedFree(void *P, size_t Bytes) {
  byteCounters()[static_cast<size_t>(workerId())].Bytes -=
      static_cast<int64_t>(Bytes);
  std::free(P);
}

int64_t aspen::liveCountedBytes() {
  int64_t Total = 0;
  for (const ByteCounter &C : byteCounters())
    Total += C.Bytes;
  return Total;
}
