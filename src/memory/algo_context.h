//===- memory/algo_context.h - Per-context algorithm workspace ------------===//
//
// The paper's streaming-analytics scenario (Section 7.3) re-runs global
// queries after every ingested batch; at steady state the query latency
// must not include per-run allocation churn. AlgoContext is the reusable
// workspace the Ligra layer and the algorithms draw their frontier, level,
// label, and score arrays from: the first run on a context populates its
// block cache, and every subsequent run of any algorithm with compatible
// array sizes performs zero heap allocations.
//
// Layering: AlgoContext caches blocks privately and falls back to the
// pool-allocator's per-worker scratch cache (scratchAcquire/Release) on a
// miss, so blocks migrate between contexts through the worker caches
// instead of being freed. Destroying a context returns every cached block
// to the worker caches.
//
// Threading contract: a context is owned by one reader thread at a time.
// acquire/release must be called from the owning thread (the algorithms
// only draw arrays before entering parallel regions; worker threads merely
// read and write the array memory). Two readers each use their own
// context and compose with the single-writer versioned graph.
//
// Memory bounds: by design the caches keep their largest-ever blocks
// (that is the steady-state zero-alloc contract), so a context that once
// ran a hub-sized query would retain O(m) blocks until clear(). An
// optional retain limit (setRetainLimit) bounds that: requests larger
// than the limit are served from transient heap (freed on release, never
// cached anywhere — the generalization of two_hop's outlier guard), and
// blocks the limit cannot cover are freed instead of pinned. Transient
// blocks are identified by a zero capacity (real blocks always have
// Cap >= 4096 from the scratch rounding).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_MEMORY_ALGO_CONTEXT_H
#define ASPEN_MEMORY_ALGO_CONTEXT_H

#include "memory/pool_allocator.h"

#include <cstddef>
#include <cstdint>
#include <cstdlib>

namespace aspen {

/// Capacity sentinel marking a block as transient heap (owned by nobody's
/// cache; freed on release). Real workspace capacities are always >= the
/// 4KB scratch rounding, so zero is unambiguous.
inline constexpr size_t TransientCap = 0;

/// Reusable per-reader workspace for the Ligra layer and the algorithms.
class AlgoContext {
public:
  AlgoContext() = default;
  /// Context with a retain limit (see setRetainLimit).
  explicit AlgoContext(size_t RetainLimitBytes)
      : RetainLimit(RetainLimitBytes) {}
  ~AlgoContext() { clear(); }

  AlgoContext(const AlgoContext &) = delete;
  AlgoContext &operator=(const AlgoContext &) = delete;

  /// Bound the bytes this context may retain (0 = unlimited, the
  /// default). Acquires larger than the limit fall back to transient
  /// heap instead of pinning outlier blocks in any cache, and the cached
  /// total decays below the limit as blocks come back.
  void setRetainLimit(size_t Bytes) {
    RetainLimit = Bytes;
    enforceLimit();
  }
  size_t retainLimit() const { return RetainLimit; }

  /// Borrow a block of at least \p MinBytes; \p CapOut receives the actual
  /// capacity, which must be passed back to release(). Served from this
  /// context's cache when possible, otherwise from the per-worker scratch
  /// cache (counted as a miss). Oversize requests on a limited context
  /// come from transient heap (CapOut == TransientCap).
  void *acquire(size_t MinBytes, size_t &CapOut) {
    if (RetainLimit && MinBytes > RetainLimit) {
      ++Transients;
      CapOut = TransientCap;
      return std::malloc(MinBytes);
    }
    if (void *P = Cache.tryAcquire(MinBytes, CapOut)) {
      CachedBytesV -= CapOut;
      return P;
    }
    ++Misses;
    return scratchAcquire(MinBytes, CapOut);
  }

  /// Return a block previously obtained from acquire(); a block the full
  /// cache cannot keep spills to the per-worker scratch cache (or, on a
  /// limited context, is freed rather than pinned elsewhere).
  void release(void *P, size_t Cap) {
    if (!P)
      return;
    if (Cap == TransientCap) {
      std::free(P);
      return;
    }
    if (RetainLimit && Cap > RetainLimit) {
      std::free(P);
      return;
    }
    size_t LoserCap;
    void *Loser = Cache.insert(P, Cap, LoserCap);
    CachedBytesV += Cap;
    if (Loser) {
      CachedBytesV -= LoserCap;
      dispose(Loser, LoserCap);
    }
    enforceLimit();
  }

  /// Return every cached block to the per-worker scratch cache.
  void clear() {
    size_t Cap;
    while (void *P = Cache.pop(Cap))
      scratchRelease(P, Cap);
    CachedBytesV = 0;
  }

  /// Cumulative cache misses (acquires not served from this context).
  /// Flat across runs once the context is warm; the steady-state tests
  /// assert a zero delta.
  uint64_t missCount() const { return Misses; }

  /// Cumulative transient-heap acquires (requests above the retain
  /// limit).
  uint64_t transientCount() const { return Transients; }

  /// Blocks currently cached (idle) in this context.
  int cachedBlocks() const { return Cache.size(); }

  /// Bytes currently cached (idle) in this context; never exceeds the
  /// retain limit when one is set.
  size_t cachedBytes() const { return CachedBytesV; }

private:
  /// Blocks a limited context cannot keep are freed, not spilled: the
  /// per-worker scratch caches would pin them for the process lifetime,
  /// which is exactly what the limit exists to prevent.
  void dispose(void *P, size_t Cap) {
    if (RetainLimit)
      std::free(P);
    else
      scratchRelease(P, Cap);
  }

  void enforceLimit() {
    if (!RetainLimit)
      return;
    size_t Cap;
    while (CachedBytesV > RetainLimit) {
      void *P = Cache.pop(Cap);
      if (!P)
        break;
      CachedBytesV -= Cap;
      std::free(P);
    }
  }

  // Enough slots for the most array-hungry algorithm (BC holds ~12 blocks
  // live plus edgeMap temporaries); caching them all between runs is what
  // makes the second run allocation-free.
  detail::BlockCache<32> Cache;
  uint64_t Misses = 0;
  uint64_t Transients = 0;
  size_t RetainLimit = 0;
  size_t CachedBytesV = 0;
};

/// Acquire through \p Ctx when present, else straight from the per-worker
/// scratch cache (the context-less compatibility path stays allocation-free
/// at steady state through the worker caches).
inline void *ctxAcquire(AlgoContext *Ctx, size_t MinBytes, size_t &CapOut) {
  return Ctx ? Ctx->acquire(MinBytes, CapOut)
             : scratchAcquire(MinBytes, CapOut);
}

inline void ctxRelease(AlgoContext *Ctx, void *P, size_t Cap) {
  if (!P)
    return;
  if (Ctx)
    Ctx->release(P, Cap);
  else if (Cap == TransientCap)
    std::free(P);
  else
    scratchRelease(P, Cap);
}

/// Acquire with a per-request byte bound: requests above \p BoundBytes
/// come from transient heap (CapOut == TransientCap) regardless of the
/// context's own limit, so one-off outliers never enter any cache.
inline void *ctxAcquireBounded(AlgoContext *Ctx, size_t MinBytes,
                               size_t BoundBytes, size_t &CapOut) {
  if (MinBytes > BoundBytes) {
    CapOut = TransientCap;
    return std::malloc(MinBytes);
  }
  return ctxAcquire(Ctx, MinBytes, CapOut);
}

/// Borrowed typed workspace array (RAII) - the single context-aware
/// acquire path for every temporary in the system. Elements are
/// uninitialized raw storage; callers placement-new or store into them
/// (only trivially destructible T makes sense here). With a null context
/// (or the size-only constructor) the array borrows from the per-worker
/// scratch cache instead - this subsumes the former ScratchArray, so the
/// codec/chunk scratch, the parallel primitives' temporaries, and the
/// algorithm workspaces all share one type and one release discipline.
template <class T> class CtxArray {
public:
  CtxArray(AlgoContext *Ctx, size_t N)
      : Ctx(Ctx), Mem(static_cast<T *>(ctxAcquire(Ctx, N * sizeof(T), Cap))),
        Sz(N) {}
  CtxArray(AlgoContext &Ctx, size_t N) : CtxArray(&Ctx, N) {}
  /// Context-less borrow straight from the per-worker scratch cache.
  explicit CtxArray(size_t N) : CtxArray(nullptr, N) {}
  CtxArray(const CtxArray &) = delete;
  CtxArray &operator=(const CtxArray &) = delete;
  ~CtxArray() { ctxRelease(Ctx, Mem, Cap); }

  T *data() { return Mem; }
  const T *data() const { return Mem; }
  size_t size() const { return Sz; }
  T &operator[](size_t I) { return Mem[I]; }
  const T &operator[](size_t I) const { return Mem[I]; }
  T *begin() { return Mem; }
  T *end() { return Mem + Sz; }

private:
  AlgoContext *Ctx;
  T *Mem;
  size_t Cap;
  size_t Sz;
};

/// CtxArray with a per-request byte bound: outlier sizes bypass the
/// workspace entirely and live on transient heap until destruction, so a
/// single hub-sized query cannot pin an O(m) block in the context or the
/// per-worker caches. This is the reusable form of two_hop's original
/// outlier guard; the context-level retain limit applies on top for
/// contexts that opt in.
template <class T> class BoundedCtxArray {
public:
  BoundedCtxArray(AlgoContext *Ctx, size_t N, size_t BoundBytes)
      : Ctx(Ctx), Mem(static_cast<T *>(ctxAcquireBounded(
                      Ctx, N * sizeof(T), BoundBytes, Cap))),
        Sz(N) {}
  BoundedCtxArray(AlgoContext &Ctx, size_t N, size_t BoundBytes)
      : BoundedCtxArray(&Ctx, N, BoundBytes) {}
  BoundedCtxArray(const BoundedCtxArray &) = delete;
  BoundedCtxArray &operator=(const BoundedCtxArray &) = delete;
  ~BoundedCtxArray() { ctxRelease(Ctx, Mem, Cap); }

  /// Whether this array fell back to transient heap.
  bool transient() const { return Cap == TransientCap; }

  T *data() { return Mem; }
  const T *data() const { return Mem; }
  size_t size() const { return Sz; }
  T &operator[](size_t I) { return Mem[I]; }
  const T &operator[](size_t I) const { return Mem[I]; }

private:
  AlgoContext *Ctx;
  T *Mem;
  size_t Cap;
  size_t Sz;
};

} // namespace aspen

#endif // ASPEN_MEMORY_ALGO_CONTEXT_H
