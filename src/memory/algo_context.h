//===- memory/algo_context.h - Per-context algorithm workspace ------------===//
//
// The paper's streaming-analytics scenario (Section 7.3) re-runs global
// queries after every ingested batch; at steady state the query latency
// must not include per-run allocation churn. AlgoContext is the reusable
// workspace the Ligra layer and the algorithms draw their frontier, level,
// label, and score arrays from: the first run on a context populates its
// block cache, and every subsequent run of any algorithm with compatible
// array sizes performs zero heap allocations.
//
// Layering: AlgoContext caches blocks privately and falls back to the
// pool-allocator's per-worker scratch cache (scratchAcquire/Release) on a
// miss, so blocks migrate between contexts through the worker caches
// instead of being freed. Destroying a context returns every cached block
// to the worker caches.
//
// Threading contract: a context is owned by one reader thread at a time.
// acquire/release must be called from the owning thread (the algorithms
// only draw arrays before entering parallel regions; worker threads merely
// read and write the array memory). Two readers each use their own
// context and compose with the single-writer versioned graph.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_MEMORY_ALGO_CONTEXT_H
#define ASPEN_MEMORY_ALGO_CONTEXT_H

#include "memory/pool_allocator.h"

#include <cstddef>
#include <cstdint>

namespace aspen {

/// Reusable per-reader workspace for the Ligra layer and the algorithms.
class AlgoContext {
public:
  AlgoContext() = default;
  ~AlgoContext() { clear(); }

  AlgoContext(const AlgoContext &) = delete;
  AlgoContext &operator=(const AlgoContext &) = delete;

  /// Borrow a block of at least \p MinBytes; \p CapOut receives the actual
  /// capacity, which must be passed back to release(). Served from this
  /// context's cache when possible, otherwise from the per-worker scratch
  /// cache (counted as a miss).
  void *acquire(size_t MinBytes, size_t &CapOut) {
    if (void *P = Cache.tryAcquire(MinBytes, CapOut))
      return P;
    ++Misses;
    return scratchAcquire(MinBytes, CapOut);
  }

  /// Return a block previously obtained from acquire(); a block the full
  /// cache cannot keep spills to the per-worker scratch cache.
  void release(void *P, size_t Cap) {
    if (!P)
      return;
    size_t LoserCap;
    if (void *Loser = Cache.insert(P, Cap, LoserCap))
      scratchRelease(Loser, LoserCap);
  }

  /// Return every cached block to the per-worker scratch cache.
  void clear() {
    size_t Cap;
    while (void *P = Cache.pop(Cap))
      scratchRelease(P, Cap);
  }

  /// Cumulative cache misses (acquires not served from this context).
  /// Flat across runs once the context is warm; the steady-state tests
  /// assert a zero delta.
  uint64_t missCount() const { return Misses; }

  /// Blocks currently cached (idle) in this context.
  int cachedBlocks() const { return Cache.size(); }

private:
  // Enough slots for the most array-hungry algorithm (BC holds ~12 blocks
  // live plus edgeMap temporaries); caching them all between runs is what
  // makes the second run allocation-free.
  detail::BlockCache<32> Cache;
  uint64_t Misses = 0;
};

/// Acquire through \p Ctx when present, else straight from the per-worker
/// scratch cache (the context-less compatibility path stays allocation-free
/// at steady state through the worker caches).
inline void *ctxAcquire(AlgoContext *Ctx, size_t MinBytes, size_t &CapOut) {
  return Ctx ? Ctx->acquire(MinBytes, CapOut)
             : scratchAcquire(MinBytes, CapOut);
}

inline void ctxRelease(AlgoContext *Ctx, void *P, size_t Cap) {
  if (!P)
    return;
  if (Ctx)
    Ctx->release(P, Cap);
  else
    scratchRelease(P, Cap);
}

/// Borrowed typed workspace array (RAII) - the single context-aware
/// acquire path for every temporary in the system. Elements are
/// uninitialized raw storage; callers placement-new or store into them
/// (only trivially destructible T makes sense here). With a null context
/// (or the size-only constructor) the array borrows from the per-worker
/// scratch cache instead - this subsumes the former ScratchArray, so the
/// codec/chunk scratch, the parallel primitives' temporaries, and the
/// algorithm workspaces all share one type and one release discipline.
template <class T> class CtxArray {
public:
  CtxArray(AlgoContext *Ctx, size_t N)
      : Ctx(Ctx), Mem(static_cast<T *>(ctxAcquire(Ctx, N * sizeof(T), Cap))),
        Sz(N) {}
  CtxArray(AlgoContext &Ctx, size_t N) : CtxArray(&Ctx, N) {}
  /// Context-less borrow straight from the per-worker scratch cache.
  explicit CtxArray(size_t N) : CtxArray(nullptr, N) {}
  CtxArray(const CtxArray &) = delete;
  CtxArray &operator=(const CtxArray &) = delete;
  ~CtxArray() { ctxRelease(Ctx, Mem, Cap); }

  T *data() { return Mem; }
  const T *data() const { return Mem; }
  size_t size() const { return Sz; }
  T &operator[](size_t I) { return Mem[I]; }
  const T &operator[](size_t I) const { return Mem[I]; }
  T *begin() { return Mem; }
  T *end() { return Mem + Sz; }

private:
  AlgoContext *Ctx;
  T *Mem;
  size_t Cap;
  size_t Sz;
};

} // namespace aspen

#endif // ASPEN_MEMORY_ALGO_CONTEXT_H
