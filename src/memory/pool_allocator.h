//===- memory/pool_allocator.h - Concurrent pool allocation ---------------===//
//
// The paper notes that pool-based allocation is "critical for achieving
// good performance due to the large number of small memory allocations in
// the functional setting" (Section 6). This file provides:
//
//  * FixedPool      - a concurrent fixed-size-block pool with per-context
//                     free-list caches backed by slab arenas.
//  * NodePool<T>    - a typed static pool (one FixedPool per node type).
//  * countedAlloc / countedFree - variable-size allocations (chunk
//                     payloads) with live-byte accounting.
//
// All pools expose live counters so tests can assert that structural
// operations are leak-free and benchmarks can report exact memory usage
// (Tables 2, 5, 9).
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_MEMORY_POOL_ALLOCATOR_H
#define ASPEN_MEMORY_POOL_ALLOCATOR_H

#include "parallel/scheduler.h"

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace aspen {

/// Concurrent pool of fixed-size blocks. Allocation and deallocation go
/// through a per-context cache; caches refill from / spill to a global
/// segment list under a mutex, amortized over whole slabs.
class FixedPool {
public:
  explicit FixedPool(size_t EltBytes);
  ~FixedPool();

  FixedPool(const FixedPool &) = delete;
  FixedPool &operator=(const FixedPool &) = delete;

  /// Allocate one uninitialized block.
  void *alloc();

  /// Return a block previously obtained from alloc().
  void free(void *P);

  /// Number of blocks currently allocated (alloc minus free), summed over
  /// all contexts. Only quiescently accurate.
  int64_t liveCount() const;

  /// Bytes per element (includes rounding to pointer alignment).
  size_t eltBytes() const { return EltBytes; }

private:
  struct alignas(64) Local {
    void *Head = nullptr;
    size_t Count = 0;
    int64_t Net = 0;
  };

  struct Segment {
    void *Head;
    size_t Count;
  };

  void refill(Local &L);
  void spill(Local &L);

  size_t EltBytes;
  size_t SlabElts;
  std::vector<Local> Locals;
  std::mutex GlobalM;
  std::vector<Segment> GlobalSegments;
  std::vector<char *> Arenas;
};

/// Registry over all typed pools: total live bytes across every NodePool.
int64_t totalPoolLiveBytes();

namespace detail {
void registerPool(FixedPool *P);
} // namespace detail

/// Static typed pool: raw storage for objects of type T. Callers placement-
/// new into the storage and call the destructor before freeing.
template <class T> class NodePool {
public:
  static void *allocRaw() { return pool().alloc(); }
  static void freeRaw(void *P) { pool().free(P); }
  static int64_t liveCount() { return pool().liveCount(); }

private:
  static FixedPool &pool() {
    static FixedPool *P = [] {
      auto *Pool = new FixedPool(sizeof(T));
      detail::registerPool(Pool);
      return Pool;
    }();
    return *P;
  }
};

/// Variable-size allocation with live-byte accounting (used for chunk
/// payloads). \p Bytes must be passed identically to countedFree.
void *countedAlloc(size_t Bytes);
void countedFree(void *P, size_t Bytes);

/// Live bytes in counted (variable-size) allocations.
int64_t liveCountedBytes();

/// Cumulative number of countedAlloc calls since process start (allocation
/// *events*, not live objects; benchmarks diff this around an operation).
uint64_t countedAllocEvents();

//===----------------------------------------------------------------------===
// Scratch workspace: per-context reusable byte buffers for the few chunk
// and C-tree operations that genuinely need a materialized array (batch
// routing in unionBC/diffBC). Blocks are cached per worker context after
// first use, so steady-state batch updates perform no heap allocation for
// temporaries. Scratch memory is deliberately outside the countedAlloc
// accounting: it is cache, not live data, and tests assert countedAlloc
// balances exactly.
//===----------------------------------------------------------------------===

namespace detail {

/// Fixed-slot cache of sized memory blocks: the one policy shared by the
/// per-worker scratch caches and the AlgoContext workspace. Acquire hands
/// out the smallest cached block that fits; insert on a full cache keeps
/// the largest blocks (they serve the widest range of requests) and
/// reports the loser for the caller to dispose of (free, or spill to a
/// lower-level cache).
template <int MaxSlots> class BlockCache {
public:
  /// Smallest cached block with capacity >= \p MinBytes, or nullptr.
  void *tryAcquire(size_t MinBytes, size_t &CapOut) {
    int Best = -1;
    for (int I = 0; I < N; ++I)
      if (Caps[I] >= MinBytes && (Best < 0 || Caps[I] < Caps[Best]))
        Best = I;
    if (Best < 0)
      return nullptr;
    void *P = Blocks[Best];
    CapOut = Caps[Best];
    --N;
    Blocks[Best] = Blocks[N];
    Caps[Best] = Caps[N];
    return P;
  }

  /// Cache (\p P, \p Cap). Returns the block the cache could not keep:
  /// nullptr when there was room, the evicted smallest block when P
  /// displaced it, or P itself when P is no larger than every cached
  /// block. \p LoserCap receives the returned block's capacity.
  void *insert(void *P, size_t Cap, size_t &LoserCap) {
    if (N < MaxSlots) {
      Blocks[N] = P;
      Caps[N] = Cap;
      ++N;
      return nullptr;
    }
    int Smallest = 0;
    for (int I = 1; I < N; ++I)
      if (Caps[I] < Caps[Smallest])
        Smallest = I;
    if (Caps[Smallest] < Cap) {
      void *Evicted = Blocks[Smallest];
      LoserCap = Caps[Smallest];
      Blocks[Smallest] = P;
      Caps[Smallest] = Cap;
      return Evicted;
    }
    LoserCap = Cap;
    return P;
  }

  int size() const { return N; }

  /// Remove and return any cached block (teardown drain); nullptr when
  /// empty.
  void *pop(size_t &CapOut) {
    if (N == 0)
      return nullptr;
    --N;
    CapOut = Caps[N];
    return Blocks[N];
  }

private:
  void *Blocks[MaxSlots];
  size_t Caps[MaxSlots];
  int N = 0;
};

} // namespace detail

/// Borrow a block of at least \p MinBytes; \p CapOut receives the actual
/// capacity, which must be passed back to scratchRelease.
void *scratchAcquire(size_t MinBytes, size_t &CapOut);
void scratchRelease(void *P, size_t Cap);

/// Cumulative number of scratch blocks allocated from the OS (cache
/// misses); flat once the per-context caches are warm.
uint64_t scratchAllocEvents();

// Typed RAII borrowing lives in memory/algo_context.h: CtxArray<T> is the
// single context-aware array over this scratch layer (its size-only
// constructor is the former ScratchArray's per-worker-cache path).

} // namespace aspen

#endif // ASPEN_MEMORY_POOL_ALLOCATOR_H
