//===- parallel/scheduler.h - Fork-join work-stealing scheduler -----------===//
//
// The paper runs Aspen on a custom Cilk-like work-stealing scheduler
// (Section 7, experimental setup). This file provides the reproduction's
// equivalent substrate: a binary fork-join scheduler with per-context work
// deques and randomized stealing.
//
// Design notes:
//  * Any OS thread may call parallelDo/parallelFor; on first use it is
//    registered with its own deque slot, so multiple application threads
//    (e.g. a writer streaming updates concurrently with query threads, as
//    in Section 7.3) can share the worker pool safely.
//  * Forked jobs live on the forking frame's stack; a blocked joiner helps
//    by stealing other jobs, so nested parallelism composes.
//  * Deques are lock-free Chase-Lev rings (Chase & Lev, SPAA'05): the
//    owner pushes and pops at the bottom with plain stores, thieves CAS
//    the top. The fine-grained forks from the within-shard parallel batch
//    merges (C-tree unionBC/diffBC groups, work-weighted pam forks) make
//    deque traffic frequent enough that the old mutex deque's lock
//    hand-offs showed up; see DESIGN.md §5 for the memory-ordering
//    argument. Capacity is fixed; on the (never-seen-in-practice)
//    overflow, pushJob reports failure and parallelDo simply runs both
//    sides inline, which is always correct.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_PARALLEL_SCHEDULER_H
#define ASPEN_PARALLEL_SCHEDULER_H

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>

namespace aspen {

/// Number of parallel execution contexts (worker threads plus registered
/// application threads share this many workers' worth of parallelism).
int numWorkers();

/// Identifier of the calling thread's context in [0, maxContexts());
/// registers the thread on first call.
int workerId();

/// Upper bound on context ids ever returned by workerId(); use for sizing
/// per-context arrays (e.g. allocator free lists).
int maxContexts();

/// When enabled, parallelDo/parallelFor run inline on the calling thread
/// (single-threaded measurements, Tables 3/4/11). The worker pool stays
/// alive but idle. Not meant to be toggled while parallel work is running.
void setSequentialMode(bool Enabled);
bool sequentialMode();

namespace detail {

/// Type-erased forked task. Lives on the stack of the forking frame.
struct Job {
  void (*Run)(void *) = nullptr;
  void *Arg = nullptr;
  std::atomic<bool> Done{false};
};

/// Push \p J onto the calling context's deque (making it stealable).
/// Returns false if the deque is full; the caller must then run the job
/// inline instead of forking.
bool pushJob(Job *J);

/// Try to remove \p J from the calling context's deque. Returns true if the
/// job was reclaimed (not stolen) and should be run inline by the caller.
bool popJobIfLocal(Job *J);

/// Help the scheduler until \p J completes: repeatedly steal and run other
/// jobs, spinning briefly when none are available.
void waitForJob(Job *J);

/// True when the pool has more than one worker.
bool parallelismEnabled();

} // namespace detail

/// Run \p Left and \p Right, potentially in parallel; returns when both
/// have completed.
template <class L, class R> void parallelDo(L &&Left, R &&Right) {
  if (!detail::parallelismEnabled()) {
    Left();
    Right();
    return;
  }
  using RightFn = std::remove_reference_t<R>;
  detail::Job J;
  J.Arg = const_cast<void *>(static_cast<const void *>(&Right));
  J.Run = [](void *Arg) { (*static_cast<RightFn *>(Arg))(); };
  if (!detail::pushJob(&J)) {
    Left();
    Right();
    return;
  }
  Left();
  if (detail::popJobIfLocal(&J)) {
    Right();
    return;
  }
  detail::waitForJob(&J);
}

namespace detail {

/// Spawn \p K copies of Fn via a binary fork tree (each leaf call is an
/// independently stealable job).
template <class F> void spawnK(size_t K, const F &Fn) {
  if (K <= 1) {
    Fn();
    return;
  }
  size_t Half = K / 2;
  parallelDo([&] { spawnK(Half, Fn); }, [&] { spawnK(K - Half, Fn); });
}

} // namespace detail

/// Apply `Fn(i)` for i in [Lo, Hi) in parallel. \p Grain bounds the size
/// of a sequentially-executed chunk; 0 selects an automatic grain.
///
/// Implementation: up to numWorkers() "band" tasks are forked; bands claim
/// fixed-size chunks from a shared atomic counter. This keeps the number
/// of fork-join operations per loop at O(P) regardless of the trip count
/// (the per-chunk cost is a single relaxed fetch_add) while retaining
/// dynamic load balancing across chunks.
template <class F>
void parallelFor(size_t Lo, size_t Hi, const F &Fn, size_t Grain = 0) {
  if (Hi <= Lo)
    return;
  size_t N = Hi - Lo;
  size_t P = static_cast<size_t>(numWorkers());
  if (Grain == 0) {
    Grain = N / (64 * P) + 1;
    if (Grain > 2048)
      Grain = 2048;
  }
  if (N <= Grain || !detail::parallelismEnabled()) {
    for (size_t I = Lo; I < Hi; ++I)
      Fn(I);
    return;
  }
  size_t NumChunks = (N + Grain - 1) / Grain;
  size_t NumBands = NumChunks < P ? NumChunks : P;
  std::atomic<size_t> NextChunk{0};
  detail::spawnK(NumBands, [&] {
    while (true) {
      size_t C = NextChunk.fetch_add(1, std::memory_order_relaxed);
      if (C >= NumChunks)
        return;
      size_t CLo = Lo + C * Grain;
      size_t CHi = CLo + Grain < Hi ? CLo + Grain : Hi;
      for (size_t I = CLo; I < CHi; ++I)
        Fn(I);
    }
  });
}

} // namespace aspen

#endif // ASPEN_PARALLEL_SCHEDULER_H
