//===- parallel/primitives.h - Parallel sequence primitives ---------------===//
//
// Work-efficient parallel primitives built on the fork-join scheduler:
// tabulate, reduce, exclusive scan, filter/pack, parallel stable merge
// sort, and a deterministic random permutation. These match the primitives
// the paper assumes (Appendix 10.1): Scan and Filter in O(n) work and
// O(log n) depth, comparison sorting in O(n log n) work.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_PARALLEL_PRIMITIVES_H
#define ASPEN_PARALLEL_PRIMITIVES_H

#include "memory/algo_context.h"
#include "parallel/scheduler.h"
#include "util/hash.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <functional>
#include <vector>

namespace aspen {

/// Build a vector of length \p N whose I-th element is `Fn(I)`.
template <class F> auto tabulate(size_t N, F &&Fn) {
  using T = decltype(Fn(size_t(0)));
  std::vector<T> Out(N);
  parallelFor(0, N, [&](size_t I) { Out[I] = Fn(I); });
  return Out;
}

namespace detail {

template <class F, class T, class Combine>
T reduceRec(size_t Lo, size_t Hi, const F &Fn, T Identity,
            const Combine &Comb, size_t Grain) {
  if (Hi - Lo <= Grain) {
    T Acc = Identity;
    for (size_t I = Lo; I < Hi; ++I)
      Acc = Comb(Acc, Fn(I));
    return Acc;
  }
  size_t Mid = Lo + (Hi - Lo) / 2;
  T Left = Identity, Right = Identity;
  parallelDo([&] { Left = reduceRec(Lo, Mid, Fn, Identity, Comb, Grain); },
             [&] { Right = reduceRec(Mid, Hi, Fn, Identity, Comb, Grain); });
  return Comb(Left, Right);
}

} // namespace detail

/// Parallel reduction of `Fn(I)` for I in [0, N) under the associative
/// combiner \p Comb with identity \p Identity.
template <class F, class T, class Combine>
T reduce(size_t N, const F &Fn, T Identity, const Combine &Comb) {
  if (N == 0)
    return Identity;
  // A floor of 2048 keeps leaf tasks large enough to amortize fork costs
  // for cheap combine functions.
  size_t Grain = N / (8 * static_cast<size_t>(numWorkers())) + 1;
  if (Grain < 2048)
    Grain = 2048;
  if (Grain > 16384)
    Grain = 16384;
  return detail::reduceRec(0, N, Fn, Identity, Comb, Grain);
}

/// Sum of `Fn(I)` over [0, N).
template <class F> auto reduceSum(size_t N, const F &Fn) {
  using T = decltype(Fn(size_t(0)));
  return reduce(N, Fn, T(), std::plus<T>());
}

/// Maximum of `Fn(I)` over [0, N); returns \p Identity for N == 0.
template <class F, class T> T reduceMax(size_t N, const F &Fn, T Identity) {
  return reduce(N, Fn, Identity,
                [](const T &A, const T &B) { return A < B ? B : A; });
}

/// Exclusive in-place prefix sum of \p Data; returns the overall total.
/// Two-pass blocked algorithm: O(n) work, O(log n) depth.
template <class T> T scanExclusive(T *Data, size_t N) {
  if (N == 0)
    return T();
  size_t P = static_cast<size_t>(numWorkers());
  size_t BlockSize = std::max<size_t>(2048, (N + 4 * P - 1) / (4 * P));
  size_t NumBlocks = (N + BlockSize - 1) / BlockSize;
  if (NumBlocks <= 1) {
    T Acc = T();
    for (size_t I = 0; I < N; ++I) {
      T Tmp = Data[I];
      Data[I] = Acc;
      Acc = Acc + Tmp;
    }
    return Acc;
  }
  // Block sums live in borrowed scratch so hot loops (edgeMap offsets run
  // every round) stay heap-allocation-free.
  CtxArray<T> Sums(NumBlocks);
  parallelFor(
      0, NumBlocks,
      [&](size_t B) {
        size_t Lo = B * BlockSize, Hi = std::min(N, Lo + BlockSize);
        T Acc = T();
        for (size_t I = Lo; I < Hi; ++I)
          Acc = Acc + Data[I];
        Sums[B] = Acc;
      },
      1);
  T Total = T();
  for (size_t B = 0; B < NumBlocks; ++B) {
    T Tmp = Sums[B];
    Sums[B] = Total;
    Total = Total + Tmp;
  }
  parallelFor(
      0, NumBlocks,
      [&](size_t B) {
        size_t Lo = B * BlockSize, Hi = std::min(N, Lo + BlockSize);
        T Acc = Sums[B];
        for (size_t I = Lo; I < Hi; ++I) {
          T Tmp = Data[I];
          Data[I] = Acc;
          Acc = Acc + Tmp;
        }
      },
      1);
  return Total;
}

/// Exclusive prefix sum of a vector in place; returns the total.
template <class T> T scanExclusive(std::vector<T> &Data) {
  return scanExclusive(Data.data(), Data.size());
}

namespace detail {

/// Shared core of filterIndex/filterIndexInto: blocked count pass, scan
/// of the per-block counts (held in borrowed scratch), then an ordered
/// scatter into the destination obtained from `MakeDest(Total)` after
/// the total is known. Returns the number of kept elements.
template <class Get, class Keep, class MakeDest>
size_t blockedFilter(size_t N, const Get &GetFn, const Keep &KeepFn,
                     const MakeDest &MakeDestFn) {
  size_t P = static_cast<size_t>(numWorkers());
  size_t BlockSize = std::max<size_t>(2048, (N + 4 * P - 1) / (4 * P));
  size_t NumBlocks = (N + BlockSize - 1) / BlockSize;
  CtxArray<size_t> Counts(NumBlocks);
  parallelFor(
      0, NumBlocks,
      [&](size_t B) {
        size_t Lo = B * BlockSize, Hi = std::min(N, Lo + BlockSize);
        size_t C = 0;
        for (size_t I = Lo; I < Hi; ++I)
          C += KeepFn(I) ? 1 : 0;
        Counts[B] = C;
      },
      1);
  size_t Total = scanExclusive(Counts.data(), NumBlocks);
  auto *Out = MakeDestFn(Total);
  parallelFor(
      0, NumBlocks,
      [&](size_t B) {
        size_t Lo = B * BlockSize, Hi = std::min(N, Lo + BlockSize);
        size_t Pos = Counts[B];
        for (size_t I = Lo; I < Hi; ++I)
          if (KeepFn(I))
            Out[Pos++] = GetFn(I);
      },
      1);
  return Total;
}

} // namespace detail

/// Parallel filter into a caller-provided buffer: write `Get(I)` for all I
/// in [0, N) with `Keep(I)` to \p Out (capacity >= the number kept),
/// preserving order; returns the number written. O(n) work, O(log n)
/// depth, no heap allocation (block counts live in borrowed scratch).
/// \p Out must not alias memory read by Get/Keep.
template <class Get, class Keep, class T>
size_t filterIndexInto(size_t N, const Get &GetFn, const Keep &KeepFn,
                       T *Out) {
  if (N == 0)
    return 0;
  return detail::blockedFilter(N, GetFn, KeepFn,
                               [&](size_t) { return Out; });
}

/// Parallel filter: collect `Get(I)` for all I in [0, N) with `Keep(I)`,
/// preserving order. O(n) work, O(log n) depth. The exactly-sized result
/// vector is the only heap allocation: one-shot filters over huge inputs
/// (graph loading) never pin input-sized blocks in the scratch caches —
/// hot loops that want a zero-allocation filter pass their own buffer to
/// filterIndexInto.
template <class Get, class Keep>
auto filterIndex(size_t N, const Get &GetFn, const Keep &KeepFn) {
  using T = decltype(GetFn(size_t(0)));
  std::vector<T> Out;
  if (N == 0)
    return Out;
  detail::blockedFilter(N, GetFn, KeepFn, [&](size_t Total) {
    Out.resize(Total);
    return Out.data();
  });
  return Out;
}

/// Filter the elements of \p In that satisfy \p Pred, preserving order.
template <class T, class Pred>
std::vector<T> filter(const std::vector<T> &In, const Pred &PredFn) {
  return filterIndex(
      In.size(), [&](size_t I) { return In[I]; },
      [&](size_t I) { return PredFn(In[I]); });
}

namespace detail {

/// Parallel merge of sorted [A, A+Na) and [B, B+Nb) into Out. Stable with
/// the convention that A's elements precede equal elements of B. Splits on
/// the midpoint of the larger input so the recursion always halves.
template <class T, class Cmp>
void parallelMerge(const T *A, size_t Na, const T *B, size_t Nb, T *Out,
                   const Cmp &Less) {
  if (Na + Nb < 8192) {
    std::merge(A, A + Na, B, B + Nb, Out, Less);
    return;
  }
  if (Na >= Nb) {
    size_t MidA = Na / 2;
    // B elements equal to the pivot stay on the right (A precedes B).
    size_t MidB = std::lower_bound(B, B + Nb, A[MidA], Less) - B;
    Out[MidA + MidB] = A[MidA];
    parallelDo(
        [&] { parallelMerge(A, MidA, B, MidB, Out, Less); },
        [&] {
          parallelMerge(A + MidA + 1, Na - MidA - 1, B + MidB, Nb - MidB,
                        Out + MidA + MidB + 1, Less);
        });
    return;
  }
  size_t MidB = Nb / 2;
  // A elements equal to the pivot go to the left (A precedes B).
  size_t MidA = std::upper_bound(A, A + Na, B[MidB], Less) - A;
  Out[MidA + MidB] = B[MidB];
  parallelDo(
      [&] { parallelMerge(A, MidA, B, MidB, Out, Less); },
      [&] {
        parallelMerge(A + MidA, Na - MidA, B + MidB + 1, Nb - MidB - 1,
                      Out + MidA + MidB + 1, Less);
      });
}

template <class T, class Cmp>
void mergeSortRec(T *Data, T *Buf, size_t N, const Cmp &Less, bool ToBuf) {
  if (N < 8192) {
    std::stable_sort(Data, Data + N, Less);
    if (ToBuf)
      std::copy(Data, Data + N, Buf);
    return;
  }
  size_t Mid = N / 2;
  parallelDo([&] { mergeSortRec(Data, Buf, Mid, Less, !ToBuf); },
             [&] { mergeSortRec(Data + Mid, Buf + Mid, N - Mid, Less,
                                !ToBuf); });
  if (ToBuf)
    parallelMerge(Data, Mid, Data + Mid, N - Mid, Buf, Less);
  else
    parallelMerge(Buf, Mid, Buf + Mid, N - Mid, Data, Less);
}

} // namespace detail

/// Parallel stable sort of [Data, Data+N) under \p Less.
template <class T, class Cmp = std::less<T>>
void parallelSort(T *Data, size_t N, Cmp Less = Cmp()) {
  if (N < 8192 || !detail::parallelismEnabled()) {
    std::stable_sort(Data, Data + N, Less);
    return;
  }
  std::vector<T> Buf(N);
  detail::mergeSortRec(Data, Buf.data(), N, Less, /*ToBuf=*/false);
}

/// Parallel stable sort of a vector.
template <class T, class Cmp = std::less<T>>
void parallelSort(std::vector<T> &Data, Cmp Less = Cmp()) {
  parallelSort(Data.data(), Data.size(), Less);
}

/// Deterministic pseudo-random permutation of [0, N) driven by \p Seed.
inline std::vector<size_t> randomPermutation(size_t N, uint64_t Seed) {
  auto Keys = tabulate(N, [&](size_t I) {
    return std::make_pair(hashAt(Seed, I), I);
  });
  parallelSort(Keys);
  return tabulate(N, [&](size_t I) { return Keys[I].second; });
}

} // namespace aspen

#endif // ASPEN_PARALLEL_PRIMITIVES_H
