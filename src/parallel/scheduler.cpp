//===- parallel/scheduler.cpp - Fork-join work-stealing scheduler ---------===//

#include "parallel/scheduler.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

using namespace aspen;
using namespace aspen::detail;

namespace {

/// Per-context lock-free work deque (Chase & Lev, SPAA'05; memory orders
/// after the C11 mapping of Lê et al., PPoPP'13). The owner pushes and
/// pops at Bottom; thieves CAS Top. Indices grow monotonically and wrap
/// into a fixed power-of-two ring.
///
/// Two deviations from the textbook version, both deliberate:
///
///  * No resizing. Deque depth equals the nesting depth of in-flight
///    parallelDo frames on the owning thread's stack, which is bounded by
///    tree recursion depth plus steal-help nesting — far below Cap. If
///    the ring ever fills, push() reports failure and the forking frame
///    runs the job inline (always correct, never blocks).
///  * The fence-based orderings are expressed as seq_cst *operations* on
///    Top/Bottom rather than standalone atomic_thread_fence: TSan does
///    not model fences, and the operation form is what keeps the
///    concurrency suites TSan-clean. On x86 the cost difference is one
///    locked instruction in pop(), which the steal-free common case
///    (push + popIfLocal) never pays beyond a store-load barrier.
///
/// Safety sketch: a slot written by push() is published by the release
/// store to Bottom; a thief's seq_cst load of Bottom that observes the
/// new value therefore also observes the Job pointer and the Job fields
/// written before the push. A slot is never overwritten while a thief
/// could still CAS its index: reusing slot (T & Mask) requires Bottom to
/// advance Cap past T, which the full-check in push() forbids while
/// Top == T. A stale Job pointer read by a slow thief is discarded when
/// its CAS on Top fails, so it is never dereferenced.
struct alignas(64) WorkDeque {
  static constexpr uint64_t CapLog = 10;
  static constexpr uint64_t Cap = uint64_t(1) << CapLog; // 1024 jobs
  static constexpr uint64_t Mask = Cap - 1;

  std::atomic<uint64_t> Top{0};    ///< next index thieves take from
  std::atomic<uint64_t> Bottom{0}; ///< next index the owner pushes to
  std::atomic<bool> Active{false};
  std::atomic<Job *> Slots[Cap];

  /// Owner only. Returns false when the ring is full.
  bool push(Job *J) {
    uint64_t B = Bottom.load(std::memory_order_relaxed);
    uint64_t T = Top.load(std::memory_order_acquire);
    if (B - T >= Cap)
      return false;
    Slots[B & Mask].store(J, std::memory_order_relaxed);
    // Release publishes the slot (and the Job it points to) to thieves.
    Bottom.store(B + 1, std::memory_order_release);
    return true;
  }

  /// Owner only: take the most recently pushed job, or nullptr if the
  /// deque is empty / the last job was stolen.
  Job *pop() {
    uint64_t B = Bottom.load(std::memory_order_relaxed);
    uint64_t T = Top.load(std::memory_order_acquire);
    if (B == T)
      return nullptr;
    B -= 1;
    // seq_cst store-load pairing with steal(): either the thief sees the
    // reservation (its Bottom load reads <= B) or we see its CAS (our
    // Top load below reads the advanced value) — both never claim the
    // same slot.
    Bottom.store(B, std::memory_order_seq_cst);
    Job *J = Slots[B & Mask].load(std::memory_order_relaxed);
    T = Top.load(std::memory_order_seq_cst);
    if (int64_t(B - T) < 0) { // thieves emptied it first
      Bottom.store(B + 1, std::memory_order_relaxed);
      return nullptr;
    }
    if (B == T) { // last element: race the thieves for it
      if (!Top.compare_exchange_strong(T, T + 1, std::memory_order_seq_cst,
                                       std::memory_order_relaxed))
        J = nullptr;
      Bottom.store(B + 1, std::memory_order_relaxed);
    }
    return J;
  }

  /// Owner only: pop() specialized to commit only when the bottom job is
  /// \p Expected. In strict fork-join the bottom job at join time is
  /// either \p Expected or a job of an *enclosing* frame (when Expected
  /// was stolen) — the peek keeps us from popping the latter.
  bool popIfLocal(Job *Expected) {
    uint64_t B = Bottom.load(std::memory_order_relaxed);
    uint64_t T = Top.load(std::memory_order_acquire);
    if (B == T)
      return false; // empty: Expected was stolen
    if (Slots[(B - 1) & Mask].load(std::memory_order_relaxed) != Expected)
      return false; // bottom belongs to an enclosing frame
    B -= 1;
    Bottom.store(B, std::memory_order_seq_cst);
    T = Top.load(std::memory_order_seq_cst);
    if (int64_t(B - T) < 0) {
      Bottom.store(B + 1, std::memory_order_relaxed);
      return false;
    }
    if (B == T) {
      bool Won = Top.compare_exchange_strong(T, T + 1,
                                             std::memory_order_seq_cst,
                                             std::memory_order_relaxed);
      Bottom.store(B + 1, std::memory_order_relaxed);
      return Won;
    }
    return true;
  }

  /// Thief: take the oldest job (largest remaining work), or nullptr.
  Job *steal() {
    uint64_t T = Top.load(std::memory_order_seq_cst);
    uint64_t B = Bottom.load(std::memory_order_seq_cst);
    if (int64_t(B - T) <= 0)
      return nullptr;
    Job *J = Slots[T & Mask].load(std::memory_order_relaxed);
    if (!Top.compare_exchange_strong(T, T + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      return nullptr; // lost the race; caller retries elsewhere
    return J;
  }

  /// Cheap non-committal peek for idle thieves.
  bool looksEmpty() const {
    uint64_t T = Top.load(std::memory_order_relaxed);
    uint64_t B = Bottom.load(std::memory_order_relaxed);
    return int64_t(B - T) <= 0;
  }
};

inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

class Scheduler {
public:
  static constexpr int MaxContextsV = 512;

  Scheduler() {
    int P = 0;
    if (const char *Env = std::getenv("ASPEN_WORKERS"))
      P = std::atoi(Env);
    if (P <= 0)
      P = static_cast<int>(std::thread::hardware_concurrency());
    if (P <= 0)
      P = 1;
    Workers = P;
    Deques = new WorkDeque[MaxContextsV];
    // Context ids [1, P) are reserved for the helper threads below;
    // application threads are assigned ids from P upward so the two id
    // spaces never collide (slot 0 is intentionally unused).
    NextContext.store(P, std::memory_order_relaxed);
    for (int I = 1; I < P; ++I)
      Threads.emplace_back([this, I] { workerLoop(I); });
  }

  ~Scheduler() {
    Shutdown.store(true, std::memory_order_release);
    for (auto &T : Threads)
      T.join();
    delete[] Deques;
  }

  int registerContext() {
    int Id = NextContext.fetch_add(1, std::memory_order_relaxed);
    assert(Id < MaxContextsV && "too many threads registered with scheduler");
    Deques[Id].Active.store(true, std::memory_order_release);
    return Id;
  }

  bool push(int Ctx, Job *J) { return Deques[Ctx].push(J); }

  bool popIfLocal(int Ctx, Job *J) { return Deques[Ctx].popIfLocal(J); }

  /// Take one job: prefer own deque's bottom, then steal a random
  /// victim's top. The looksEmpty peek keeps idle thieves from issuing
  /// CAS traffic against quiet deques. Returns nullptr if no work was
  /// found after a few attempts.
  Job *findWork(int Ctx, uint64_t &Rng) {
    if (Job *J = Deques[Ctx].pop())
      return J;
    int Limit = NextContext.load(std::memory_order_acquire);
    for (int Attempt = 0; Attempt < 8; ++Attempt) {
      Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
      int Victim = static_cast<int>((Rng >> 33) % static_cast<uint64_t>(
                                        Limit > 0 ? Limit : 1));
      if (Victim == Ctx)
        continue;
      WorkDeque &D = Deques[Victim];
      if (!D.Active.load(std::memory_order_relaxed) || D.looksEmpty())
        continue;
      if (Job *J = D.steal())
        return J;
    }
    return nullptr;
  }

  static void runJob(Job *J) {
    J->Run(J->Arg);
    J->Done.store(true, std::memory_order_release);
  }

  void waitFor(int Ctx, Job *J) {
    uint64_t Rng = 0x9e3779b97f4a7c15ULL * (Ctx + 1);
    int Idle = 0;
    while (!J->Done.load(std::memory_order_acquire)) {
      if (Job *Other = findWork(Ctx, Rng)) {
        runJob(Other);
        Idle = 0;
        continue;
      }
      // Joins are latency-critical: spin with pauses, occasionally yield.
      ++Idle;
      if (Idle % 64 == 0)
        std::this_thread::yield();
      else
        cpuRelax();
    }
  }

  void workerLoop(int Ctx) {
    WorkerIdTL = Ctx;
    Deques[Ctx].Active.store(true, std::memory_order_release);
    uint64_t Rng = 0x243f6a8885a308d3ULL * (Ctx + 1);
    int Idle = 0;
    while (!Shutdown.load(std::memory_order_acquire)) {
      if (Job *J = findWork(Ctx, Rng)) {
        runJob(J);
        Idle = 0;
        continue;
      }
      // Stay responsive for bursty fork-join regions: spin briefly, then
      // yield, and only back off to short sleeps after ~a millisecond of
      // idleness (a sleeping worker would miss a whole parallel region).
      ++Idle;
      if (Idle < 2048) {
        cpuRelax();
      } else if (Idle < 16384) {
        if (Idle % 8 == 0)
          std::this_thread::yield();
        else
          cpuRelax();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    }
  }

  int workers() const { return Workers; }

  static thread_local int WorkerIdTL;

  std::atomic<bool> Shutdown{false};
  std::atomic<int> NextContext{0};
  WorkDeque *Deques = nullptr;
  std::vector<std::thread> Threads;
  int Workers = 1;
};

thread_local int Scheduler::WorkerIdTL = -1;

Scheduler &scheduler() {
  static Scheduler S;
  return S;
}

std::atomic<bool> SequentialModeFlag{false};

} // namespace

void aspen::setSequentialMode(bool Enabled) {
  SequentialModeFlag.store(Enabled, std::memory_order_release);
}

bool aspen::sequentialMode() {
  return SequentialModeFlag.load(std::memory_order_acquire);
}

int aspen::numWorkers() { return scheduler().workers(); }

int aspen::maxContexts() { return Scheduler::MaxContextsV; }

int aspen::workerId() {
  if (Scheduler::WorkerIdTL < 0)
    Scheduler::WorkerIdTL = scheduler().registerContext();
  return Scheduler::WorkerIdTL;
}

bool aspen::detail::parallelismEnabled() {
  return scheduler().workers() > 1 &&
         !SequentialModeFlag.load(std::memory_order_relaxed);
}

bool aspen::detail::pushJob(Job *J) { return scheduler().push(workerId(), J); }

bool aspen::detail::popJobIfLocal(Job *J) {
  return scheduler().popIfLocal(workerId(), J);
}

void aspen::detail::waitForJob(Job *J) { scheduler().waitFor(workerId(), J); }
