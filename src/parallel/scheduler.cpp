//===- parallel/scheduler.cpp - Fork-join work-stealing scheduler ---------===//

#include "parallel/scheduler.h"

#include <chrono>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

using namespace aspen;
using namespace aspen::detail;

namespace {

/// Per-context work deque. The owner pushes/pops at the back; thieves take
/// from the front (oldest job == largest remaining work).
struct alignas(64) WorkDeque {
  std::mutex M;
  std::deque<Job *> Items;
  std::atomic<int> Size{0}; ///< mirror of Items.size() for lock-free peeks
  std::atomic<bool> Active{false};
};

inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

class Scheduler {
public:
  static constexpr int MaxContextsV = 512;

  Scheduler() {
    int P = 0;
    if (const char *Env = std::getenv("ASPEN_WORKERS"))
      P = std::atoi(Env);
    if (P <= 0)
      P = static_cast<int>(std::thread::hardware_concurrency());
    if (P <= 0)
      P = 1;
    Workers = P;
    Deques = new WorkDeque[MaxContextsV];
    // Context ids [1, P) are reserved for the helper threads below;
    // application threads are assigned ids from P upward so the two id
    // spaces never collide (slot 0 is intentionally unused).
    NextContext.store(P, std::memory_order_relaxed);
    for (int I = 1; I < P; ++I)
      Threads.emplace_back([this, I] { workerLoop(I); });
  }

  ~Scheduler() {
    Shutdown.store(true, std::memory_order_release);
    for (auto &T : Threads)
      T.join();
    delete[] Deques;
  }

  int registerContext() {
    int Id = NextContext.fetch_add(1, std::memory_order_relaxed);
    assert(Id < MaxContextsV && "too many threads registered with scheduler");
    Deques[Id].Active.store(true, std::memory_order_release);
    return Id;
  }

  void push(int Ctx, Job *J) {
    WorkDeque &D = Deques[Ctx];
    std::lock_guard<std::mutex> Lock(D.M);
    D.Items.push_back(J);
    D.Size.store(int(D.Items.size()), std::memory_order_release);
  }

  bool popIfLocal(int Ctx, Job *J) {
    WorkDeque &D = Deques[Ctx];
    std::lock_guard<std::mutex> Lock(D.M);
    if (!D.Items.empty() && D.Items.back() == J) {
      D.Items.pop_back();
      D.Size.store(int(D.Items.size()), std::memory_order_release);
      return true;
    }
    return false;
  }

  /// Take one job: prefer own deque's back, then steal a random victim's
  /// front. A lock-free Size peek keeps idle thieves off the mutexes.
  /// Returns nullptr if no work was found after a few attempts.
  Job *findWork(int Ctx, uint64_t &Rng) {
    WorkDeque &Own = Deques[Ctx];
    if (Own.Size.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> Lock(Own.M);
      if (!Own.Items.empty()) {
        Job *J = Own.Items.back();
        Own.Items.pop_back();
        Own.Size.store(int(Own.Items.size()), std::memory_order_release);
        return J;
      }
    }
    int Limit = NextContext.load(std::memory_order_acquire);
    for (int Attempt = 0; Attempt < 8; ++Attempt) {
      Rng = Rng * 6364136223846793005ULL + 1442695040888963407ULL;
      int Victim = static_cast<int>((Rng >> 33) % static_cast<uint64_t>(
                                        Limit > 0 ? Limit : 1));
      if (Victim == Ctx)
        continue;
      WorkDeque &D = Deques[Victim];
      if (!D.Active.load(std::memory_order_relaxed) ||
          D.Size.load(std::memory_order_acquire) == 0)
        continue;
      // try_lock: if another thief (or the owner) holds the deque, move
      // on instead of convoying on the mutex.
      std::unique_lock<std::mutex> Lock(D.M, std::try_to_lock);
      if (!Lock.owns_lock())
        continue;
      if (!D.Items.empty()) {
        Job *J = D.Items.front();
        D.Items.pop_front();
        D.Size.store(int(D.Items.size()), std::memory_order_release);
        return J;
      }
    }
    return nullptr;
  }

  static void runJob(Job *J) {
    J->Run(J->Arg);
    J->Done.store(true, std::memory_order_release);
  }

  void waitFor(int Ctx, Job *J) {
    uint64_t Rng = 0x9e3779b97f4a7c15ULL * (Ctx + 1);
    int Idle = 0;
    while (!J->Done.load(std::memory_order_acquire)) {
      if (Job *Other = findWork(Ctx, Rng)) {
        runJob(Other);
        Idle = 0;
        continue;
      }
      // Joins are latency-critical: spin with pauses, occasionally yield.
      ++Idle;
      if (Idle % 64 == 0)
        std::this_thread::yield();
      else
        cpuRelax();
    }
  }

  void workerLoop(int Ctx) {
    WorkerIdTL = Ctx;
    Deques[Ctx].Active.store(true, std::memory_order_release);
    uint64_t Rng = 0x243f6a8885a308d3ULL * (Ctx + 1);
    int Idle = 0;
    while (!Shutdown.load(std::memory_order_acquire)) {
      if (Job *J = findWork(Ctx, Rng)) {
        runJob(J);
        Idle = 0;
        continue;
      }
      // Stay responsive for bursty fork-join regions: spin briefly, then
      // yield, and only back off to short sleeps after ~a millisecond of
      // idleness (a sleeping worker would miss a whole parallel region).
      ++Idle;
      if (Idle < 2048) {
        cpuRelax();
      } else if (Idle < 16384) {
        if (Idle % 8 == 0)
          std::this_thread::yield();
        else
          cpuRelax();
      } else {
        std::this_thread::sleep_for(std::chrono::microseconds(20));
      }
    }
  }

  int workers() const { return Workers; }

  static thread_local int WorkerIdTL;

  std::atomic<bool> Shutdown{false};
  std::atomic<int> NextContext{0};
  WorkDeque *Deques = nullptr;
  std::vector<std::thread> Threads;
  int Workers = 1;
};

thread_local int Scheduler::WorkerIdTL = -1;

Scheduler &scheduler() {
  static Scheduler S;
  return S;
}

std::atomic<bool> SequentialModeFlag{false};

} // namespace

void aspen::setSequentialMode(bool Enabled) {
  SequentialModeFlag.store(Enabled, std::memory_order_release);
}

bool aspen::sequentialMode() {
  return SequentialModeFlag.load(std::memory_order_acquire);
}

int aspen::numWorkers() { return scheduler().workers(); }

int aspen::maxContexts() { return Scheduler::MaxContextsV; }

int aspen::workerId() {
  if (Scheduler::WorkerIdTL < 0)
    Scheduler::WorkerIdTL = scheduler().registerContext();
  return Scheduler::WorkerIdTL;
}

bool aspen::detail::parallelismEnabled() {
  return scheduler().workers() > 1 &&
         !SequentialModeFlag.load(std::memory_order_relaxed);
}

void aspen::detail::pushJob(Job *J) { scheduler().push(workerId(), J); }

bool aspen::detail::popJobIfLocal(Job *J) {
  return scheduler().popIfLocal(workerId(), J);
}

void aspen::detail::waitForJob(Job *J) { scheduler().waitFor(workerId(), J); }
