//===- ctree/ctree.h - Compressed purely-functional search trees ----------===//
//
// The C-tree of Section 3: a chunking scheme over purely-functional search
// trees. Elements whose hash is 0 mod b are "heads" and live in a
// purely-functional weight-balanced tree; every head's value is its "tail"
// chunk (the following non-head elements), and the elements before the
// first head form the "prefix" chunk. Because head status is a property of
// the element itself, an element is a head in every C-tree that contains
// it, which the set algebra below relies on.
//
// Set operations follow the recursive structure of Algorithms 1-3 with one
// equivalent restructuring: instead of eagerly splitting the exposed tail
// v2 and the split-off prefix BP2 around each other's smallest heads
// (Algorithm 1, lines 9-11), remnant chunks flow down the recursion as the
// prefixes of valid sub-C-trees and are merged in the base cases
// (unionBC / diffBC / intersect base). Head selection is content-
// determined, so the resulting C-tree is identical; the work/depth bounds
// are unchanged because every chunk is still processed O(1) times per
// recursion level.
//
// Ownership: like pam/tree.h, static "raw" functions consume one reference
// per input and return owned roots; the public CTreeSet class provides
// value semantics on top.
//
// Hot-path memory discipline: chunk-level merges stream through codec
// cursors and encode directly into exactly-sized payloads (see
// ctree/chunk.h); the only materialized temporaries are the batch spans
// needed for head routing in unionBC/diffBC, which live in the per-thread
// scratch workspace (memory/pool_allocator.h) and are recycled across
// operations.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_CTREE_CTREE_H
#define ASPEN_CTREE_CTREE_H

#include "ctree/chunk.h"
#include "pam/tree.h"
#include "parallel/primitives.h"
#include "util/hash.h"
#include "util/types.h"

#include <optional>
#include <vector>

namespace aspen {

/// Default expected chunk size b = 128 (HeadMask = b - 1). The mask is a
/// per-tree construction parameter, not process state: head-ness is baked
/// into a C-tree's structure at build time and the set algebra never
/// re-evaluates it, so trees built under different masks coexist freely
/// in one process (e.g. per-graph autotuned chunk sizes, the chunk-size
/// sweep). Trees that are *combined* by the set operations must share a
/// mask; the graph layer guarantees this by threading one BuildParams
/// through every construction site of a snapshot lineage.
inline constexpr uint64_t CTreeDefaultHeadMask = 127;

/// Head-selection hash, shared by every C-tree. \p HeadMask = b - 1 with
/// b a power of two; expected chunk size is b.
struct CTreeParams {
  static constexpr uint64_t Seed = 0xa9c3f71b02d5e841ULL;

  static bool isHead(uint64_t Key, uint64_t HeadMask) {
    return (hash64(Key ^ Seed) & HeadMask) == 0;
  }
};

/// A compressed purely-functional ordered set of integers (Section 3).
/// \tparam K     element type (unsigned integer)
/// \tparam Codec chunk codec: DeltaByteCodec (compressed) or RawCodec
template <class K, class Codec = DeltaByteCodec> class CTreeSet {
public:
  using Payload = ChunkPayload<K>;

  /// PAM entry for the heads tree: key = head element, value = tail chunk,
  /// augmentation = element count (1 + tail size) summed over subtrees.
  struct HeadEntry {
    using KeyT = K;
    using ValT = ChunkRef<K>;
    using AugT = uint64_t;
    static bool less(const K &A, const K &B) { return A < B; }
    static AugT augOfEntry(const K &, const ValT &V) {
      return 1 + V.count();
    }
    static AugT augIdentity() { return 0; }
    static AugT augCombine(AugT A, AugT B) { return A + B; }
  };

  using T = Tree<HeadEntry>;
  using Node = typename T::Node;

  /// Construction parameters (the edge-set representation concept: every
  /// representation names a BuildParams, threaded by the graph layer
  /// through all construction sites of a snapshot lineage). The mask only
  /// matters where heads are (re)selected — construction and invariant
  /// checking; merges of already-built trees never consult it.
  struct BuildParams {
    uint64_t HeadMask = CTreeDefaultHeadMask;
  };

  //===--------------------------------------------------------------------===
  // Value semantics.
  //===--------------------------------------------------------------------===

  CTreeSet() = default;
  /// Adopts ownership of \p Root and \p Prefix.
  CTreeSet(Node *Root, Payload *Prefix) : Root(Root), Prefix(Prefix) {}

  CTreeSet(const CTreeSet &O) : Root(O.Root), Prefix(O.Prefix) {
    T::retain(Root);
    retainChunk(Prefix);
  }
  CTreeSet(CTreeSet &&O) noexcept : Root(O.Root), Prefix(O.Prefix) {
    O.Root = nullptr;
    O.Prefix = nullptr;
  }
  CTreeSet &operator=(const CTreeSet &O) {
    if (this != &O) {
      T::retain(O.Root);
      retainChunk(O.Prefix);
      clear();
      Root = O.Root;
      Prefix = O.Prefix;
    }
    return *this;
  }
  CTreeSet &operator=(CTreeSet &&O) noexcept {
    if (this != &O) {
      clear();
      Root = O.Root;
      Prefix = O.Prefix;
      O.Root = nullptr;
      O.Prefix = nullptr;
    }
    return *this;
  }
  ~CTreeSet() { clear(); }

  void clear() {
    T::release(Root);
    releaseChunk(Prefix);
    Root = nullptr;
    Prefix = nullptr;
  }

  bool empty() const { return !Root && !Prefix; }

  /// Total number of elements: O(1) via the count augmentation.
  size_t size() const { return chunkCount(Prefix) + T::aug(Root); }

  Node *root() const { return Root; }
  Payload *prefix() const { return Prefix; }

  //===--------------------------------------------------------------------===
  // Construction.
  //===--------------------------------------------------------------------===

  /// Build from sorted, duplicate-free elements. O(n) work after sorting,
  /// O(b log n) depth w.h.p. (Section 4.2; sorting is the caller's job so
  /// pre-sorted inputs, e.g. CSR rows, build in linear work).
  static CTreeSet buildSorted(const K *E, size_t N, BuildParams P = {}) {
    if (N == 0)
      return CTreeSet();
    CtxArray<size_t> HeadIdx(N);
    size_t *HeadIdxP = HeadIdx.data();
    size_t H = filterIndexInto(
        N, [](size_t I) { return I; },
        [&](size_t I) { return CTreeParams::isHead(E[I], P.HeadMask); },
        HeadIdxP);
    if (H == 0)
      return CTreeSet(nullptr, makeChunk<Codec>(E, N));
    Payload *Pre = makeChunk<Codec>(E, HeadIdxP[0]);
    UpdateBuf Pairs(H);
    Pairs.setSize(H);
    parallelFor(0, H, [&](size_t I) {
      size_t Lo = HeadIdxP[I] + 1;
      size_t Hi = (I + 1 < H) ? HeadIdxP[I + 1] : N;
      Pairs.emplaceAt(I, E[HeadIdxP[I]],
                      ChunkRef<K>(makeChunk<Codec>(E + Lo, Hi - Lo)));
    });
    Node *Tr = T::buildSorted(Pairs.data(), H);
    return CTreeSet(Tr, Pre);
  }

  /// Sorts, removes duplicates, and builds.
  static CTreeSet fromUnsorted(std::vector<K> E, BuildParams P = {}) {
    parallelSort(E);
    E.erase(std::unique(E.begin(), E.end()), E.end());
    return buildSorted(E.data(), E.size(), P);
  }

  //===--------------------------------------------------------------------===
  // Borrowed views.
  //===--------------------------------------------------------------------===

  /// Non-owning view over a C-tree's (root, prefix) pair. Trivially
  /// copyable/destructible, so flat snapshots (Section 5.1) can hold one
  /// per vertex with no reference-count traffic; the flat snapshot keeps
  /// the owning graph version alive instead.
  struct View {
    const Node *Root = nullptr;
    const Payload *Prefix = nullptr;

    size_t size() const { return chunkCount(Prefix) + T::aug(Root); }
    bool empty() const { return !Root && !Prefix; }

    /// Membership. O(b + log n) expected work: findLE over the heads tree
    /// plus an early-exiting decode scan of one chunk.
    bool contains(K X) const {
      if (Prefix && X <= Prefix->Last) {
        if (X < Prefix->First)
          return false;
        return chunkContains<Codec>(Prefix, X);
      }
      const Node *N = T::findLE(Root, X);
      if (!N)
        return false;
      if (N->Key == X)
        return true;
      return chunkContains<Codec>(N->Val.get(), X);
    }

    /// No O(1) membership index on a plain C-tree view (the hybrid
    /// representation's hot-vertex sidecars provide one).
    bool hasFastProbe() const { return false; }

    /// Streaming in-order cursor over every element: composes the prefix
    /// chunk cursor, the heads-tree cursor, and per-head tail cursors.
    /// Nothing is materialized; the view must outlive the cursor.
    class Cursor {
    public:
      using ChunkCursor = typename Codec::template Cursor<K>;

      Cursor() = default;
      explicit Cursor(const View &V) : TC(V.Root) {
        CC = ChunkCursor(V.Prefix);
        State = !CC.done() ? InChunk : (!TC.done() ? AtHead : Drained);
      }

      bool done() const { return State == Drained; }
      K value() const {
        assert(State != Drained && "value() on exhausted cursor");
        return State == InChunk ? CC.value() : TC.node()->Key;
      }
      void advance() {
        assert(State != Drained && "advance() on exhausted cursor");
        if (State == InChunk) {
          CC.advance();
          if (!CC.done())
            return;
        } else {
          // Leave the head: its tail chunk comes next.
          CC = ChunkCursor(TC.node()->Val.get());
          TC.advance();
          if (!CC.done()) {
            State = InChunk;
            return;
          }
        }
        State = TC.done() ? Drained : AtHead;
      }

    private:
      enum S { InChunk, AtHead, Drained };
      ChunkCursor CC;
      typename T::Cursor TC;
      S State = Drained;
    };

    Cursor cursor() const { return Cursor(*this); }

    /// Sequential in-order traversal: Fn(element). Walks chunks through
    /// the codec's block-bulk iterate (tight array inner loops) rather
    /// than the element-stepping Cursor.
    template <class F> void forEachSeq(const F &Fn) const {
      if (Prefix)
        Codec::template iterate<K>(Prefix, [&](K V) {
          Fn(V);
          return true;
        });
      T::forEachSeq(Root, [&](const K &Key, const ChunkRef<K> &Tail) {
        Fn(Key);
        if (Tail.get())
          Codec::template iterate<K>(Tail.get(), [&](K V) {
            Fn(V);
            return true;
          });
      });
    }

    /// Parallel traversal (unordered across chunks): Fn(element).
    template <class F> void forEachPar(const F &Fn) const {
      auto DoPrefix = [&] {
        if (Prefix)
          Codec::template iterate<K>(Prefix, [&](K V) {
            Fn(V);
            return true;
          });
      };
      auto DoTree = [&] {
        T::forEachPar(Root, [&](const K &Key, const ChunkRef<K> &Tail) {
          Fn(Key);
          if (Tail.get())
            Codec::template iterate<K>(Tail.get(), [&](K V) {
              Fn(V);
              return true;
            });
        });
      };
      parallelDo(DoPrefix, DoTree);
    }

    /// Parallel traversal with in-order element indices: Fn(index,
    /// element). Used by edgeMap to write frontier candidates at
    /// per-edge offsets.
    template <class F> void forEachIndexed(const F &Fn) const {
      auto DoPrefix = [&] {
        if (Prefix) {
          size_t I = 0;
          Codec::template iterate<K>(Prefix, [&](K V) {
            Fn(I++, V);
            return true;
          });
        }
      };
      size_t Base = chunkCount(Prefix);
      auto DoTree = [&] { forEachIndexedRec(Root, Base, Fn); };
      parallelDo(DoPrefix, DoTree);
    }

    /// Sequential in-order traversal with early exit: Fn returns false
    /// to stop. Returns false iff stopped early. Chunk contents stream
    /// through the block-bulk iterate (the dense edgeMap hot path).
    template <class F> bool iterCond(const F &Fn) const {
      if (Prefix && !Codec::template iterate<K>(Prefix, Fn))
        return false;
      return T::iterCond(Root, [&](const K &Key, const ChunkRef<K> &Tail) {
        if (!Fn(Key))
          return false;
        if (!Tail.get())
          return true;
        return Codec::template iterate<K>(Tail.get(), Fn);
      });
    }

    /// All elements, in order.
    std::vector<K> toVector() const {
      std::vector<K> Out;
      Out.reserve(size());
      forEachSeq([&](K V) { Out.push_back(V); });
      return Out;
    }
  };

  /// Borrow a view of this set (valid while this set is alive).
  View view() const { return View{Root, Prefix}; }

  /// Streaming cursor over all elements (this set must outlive it).
  typename View::Cursor cursor() const { return view().cursor(); }

  //===--------------------------------------------------------------------===
  // Queries.
  //===--------------------------------------------------------------------===

  /// Membership. O(b + log n) expected work (Section 4.2).
  bool contains(K X) const { return view().contains(X); }

  /// Sequential in-order traversal: Fn(element).
  template <class F> void forEachSeq(const F &Fn) const {
    view().forEachSeq(Fn);
  }

  /// Parallel traversal (unordered across chunks): Fn(element).
  template <class F> void forEachPar(const F &Fn) const {
    view().forEachPar(Fn);
  }

  /// Parallel traversal with in-order element indices: Fn(index, element).
  template <class F> void forEachIndexed(const F &Fn) const {
    view().forEachIndexed(Fn);
  }

  /// Sequential in-order traversal with early exit: Fn returns false to
  /// stop. Returns false iff stopped early.
  template <class F> bool iterCond(const F &Fn) const {
    return view().iterCond(Fn);
  }

  /// All elements, in order.
  std::vector<K> toVector() const { return view().toVector(); }

  /// Exact heap footprint: tree nodes plus chunk payload bytes.
  size_t memoryBytes() const {
    return chunkBytes(Prefix) + treeMemory(Root);
  }

  /// Number of heads (tree nodes).
  size_t numHeads() const { return T::size(Root); }

  //===--------------------------------------------------------------------===
  // Set algebra (consuming, value-passing API).
  //===--------------------------------------------------------------------===

  static CTreeSet setUnion(CTreeSet A, CTreeSet B) {
    return fromRaw(rawUnion(A.takeRaw(), B.takeRaw()));
  }

  static CTreeSet setDifference(CTreeSet A, CTreeSet B) {
    return fromRaw(rawDifference(A.takeRaw(), B.takeRaw()));
  }

  static CTreeSet setIntersect(CTreeSet A, CTreeSet B) {
    return fromRaw(rawIntersect(A.takeRaw(), B.takeRaw()));
  }

  /// MultiInsert (Section 4): union with a C-tree built over the batch.
  /// \p P must match the mask this tree was built under.
  CTreeSet multiInsert(std::vector<K> Batch, BuildParams P = {}) const {
    return setUnion(*this, fromUnsorted(std::move(Batch), P));
  }

  /// MultiDelete (Section 4): difference with the batch.
  CTreeSet multiDelete(std::vector<K> Batch, BuildParams P = {}) const {
    return setDifference(*this, fromUnsorted(std::move(Batch), P));
  }

  /// Insert a single element (O(b + log n) expected).
  CTreeSet insert(K X, BuildParams P = {}) const {
    return multiInsert({X}, P);
  }

  /// Remove a single element.
  CTreeSet remove(K X, BuildParams P = {}) const {
    return multiDelete({X}, P);
  }

  //===--------------------------------------------------------------------===
  // Validation (test support).
  //===--------------------------------------------------------------------===

  /// Full structural audit: PAM invariants, strict element order, head
  /// placement, prefix/tail bounds, chunk headers, and count augmentation.
  /// \p P must match the mask this tree was built under.
  bool checkInvariants(BuildParams P = {}) const {
    if (!T::validate(Root))
      return false;
    // The element sequence must be strictly increasing, with heads exactly
    // where the hash says they are.
    bool Ok = true;
    bool Any = false;
    K Prev{};
    size_t Count = 0;
    bool SeenTreeKey = false;
    if (Prefix) {
      if (!checkChunk(Prefix))
        return false;
      Codec::template iterate<K>(Prefix, [&](K V) {
        if (Any && V <= Prev)
          Ok = false;
        if (CTreeParams::isHead(V, P.HeadMask))
          Ok = false; // prefix holds non-heads only
        Prev = V;
        Any = true;
        ++Count;
        return true;
      });
    }
    T::forEachSeq(Root, [&](const K &Key, const ChunkRef<K> &Tail) {
      SeenTreeKey = true;
      if (Any && Key <= Prev)
        Ok = false;
      if (!CTreeParams::isHead(Key, P.HeadMask))
        Ok = false; // tree keys must be heads
      Prev = Key;
      Any = true;
      ++Count;
      if (Payload *C = Tail.get()) {
        if (!checkChunk(C))
          Ok = false;
        Codec::template iterate<K>(C, [&](K V) {
          if (V <= Prev)
            Ok = false;
          if (CTreeParams::isHead(V, P.HeadMask))
            Ok = false; // tails hold non-heads only
          Prev = V;
          ++Count;
          return true;
        });
      }
    });
    (void)SeenTreeKey;
    if (Count != size())
      Ok = false; // augmentation must match actual element count
    return Ok;
  }

private:
  struct Raw {
    Node *T = nullptr;
    Payload *P = nullptr;
    bool empty() const { return !T && !P; }
  };

  struct RawSplit {
    Raw Left;
    Raw Right;
    bool Found = false;
  };

  Raw takeRaw() {
    Raw R{Root, Prefix};
    Root = nullptr;
    Prefix = nullptr;
    return R;
  }

  static CTreeSet fromRaw(Raw R) { return CTreeSet(R.T, R.P); }

  static void releaseRaw(Raw R) {
    T::release(R.T);
    releaseChunk(R.P);
  }

  static bool checkChunk(const Payload *C) {
    if (C->Count == 0)
      return false;
    K First{}, Last{};
    size_t N = 0;
    Codec::template iterate<K>(C, [&](K V) {
      if (N == 0)
        First = V;
      Last = V;
      ++N;
      return true;
    });
    return N == C->Count && First == C->First && Last == C->Last;
  }

public:
  template <class F>
  static void forEachIndexedRec(const Node *N, size_t Offset, const F &Fn) {
    if (!N)
      return;
    size_t LeftCount = T::aug(N->Left);
    auto DoNode = [&] {
      size_t I = Offset + LeftCount;
      Fn(I++, N->Key);
      if (Payload *C = N->Val.get())
        Codec::template iterate<K>(C, [&](K V) {
          Fn(I++, V);
          return true;
        });
    };
    size_t NodeElems = 1 + N->Val.count();
    if (N->Size < T::SeqCutoff) {
      forEachIndexedRec(N->Left, Offset, Fn);
      DoNode();
      forEachIndexedRec(N->Right, Offset + LeftCount + NodeElems, Fn);
      return;
    }
    parallelDo([&] { forEachIndexedRec(N->Left, Offset, Fn); },
               [&] {
                 DoNode();
                 forEachIndexedRec(N->Right, Offset + LeftCount + NodeElems,
                                   Fn);
               });
  }

private:
  static size_t treeMemory(const Node *N) {
    if (!N)
      return 0;
    size_t Self = sizeof(Node) + chunkBytes(N->Val.get());
    if (N->Size < T::SeqCutoff)
      return Self + treeMemory(N->Left) + treeMemory(N->Right);
    size_t L = 0, R = 0;
    parallelDo([&] { L = treeMemory(N->Left); },
               [&] { R = treeMemory(N->Right); });
    return Self + L + R;
  }

  //===--------------------------------------------------------------------===
  // Raw algorithms (Algorithms 1-3 with the restructuring described in the
  // file header). All consume their tree/chunk arguments.
  //===--------------------------------------------------------------------===

  /// Split around \p Key (Algorithm 3). The left result always has a null
  /// prefix when the input prefix is null; the input prefix (or its lower
  /// part) becomes the left result's prefix; the cut tail (or upper prefix
  /// part) becomes the right result's prefix.
  static RawSplit rawSplit(Raw C, K Key) {
    RawSplit S;
    if (C.empty())
      return S;
    if (C.P) {
      if (Key <= C.P->Last) {
        ChunkSplit CS = splitChunk<Codec>(C.P, Key);
        releaseChunk(C.P);
        S.Left = Raw{nullptr, static_cast<Payload *>(CS.Left)};
        S.Right = Raw{C.T, static_cast<Payload *>(CS.Right)};
        S.Found = CS.Found;
        return S;
      }
      S = rawSplit(Raw{C.T, nullptr}, Key);
      assert(!S.Left.P && "left split of prefix-free tree has a prefix");
      S.Left.P = C.P;
      return S;
    }
    if (!C.T)
      return S;
    typename T::Exposed E = T::expose(C.T);
    K H = E.Shell->Key;
    if (Key < H) {
      S = rawSplit(Raw{E.Left, nullptr}, Key);
      Node *RT = T::join(S.Right.T, E.Shell, E.Right);
      S.Right = Raw{RT, S.Right.P};
      return S;
    }
    if (Key == H) {
      Payload *Tail = E.Shell->Val.take();
      T::freeShell(E.Shell);
      S.Left = Raw{E.Left, nullptr};
      S.Right = Raw{E.Right, Tail};
      S.Found = true;
      return S;
    }
    // Key > H: either the key splits H's tail, or we recurse right.
    Payload *Tail = E.Shell->Val.get();
    if (Tail && Key <= Tail->Last) {
      ChunkSplit CS = splitChunk<Codec>(Tail, Key);
      E.Shell->Val = ChunkRef<K>(static_cast<Payload *>(CS.Left));
      S.Left = Raw{T::join(E.Left, E.Shell, nullptr), nullptr};
      S.Right = Raw{E.Right, static_cast<Payload *>(CS.Right)};
      S.Found = CS.Found;
      return S;
    }
    S = rawSplit(Raw{E.Right, nullptr}, Key);
    Node *LT = T::join(E.Left, E.Shell, S.Left.T);
    S.Left = Raw{LT, nullptr};
    return S;
  }

  /// Join two C-trees where every element of L precedes every element of R
  /// and no middle key exists (the C-tree Join2 the paper describes for
  /// Difference/Intersection). R's prefix is folded into L's last tail.
  static Raw rawJoin2(Raw L, Raw R) {
    if (!R.P)
      return Raw{T::join2(L.T, R.T), L.P};
    if (!L.T) {
      Payload *NP = unionChunks<Codec>(L.P, R.P);
      releaseChunk(L.P);
      releaseChunk(R.P);
      return Raw{R.T, NP};
    }
    auto [Rest, LastShell] = T::splitLast(L.T);
    Payload *NewTail = unionChunks<Codec>(LastShell->Val.get(), R.P);
    releaseChunk(R.P);
    LastShell->Val = ChunkRef<K>(NewTail);
    return Raw{T::join(Rest, LastShell, R.T), L.P};
  }

public:
  /// Decoded-batch size above which unionBC/diffBC discover group
  /// boundaries with parallel head probes and run the per-group chunk
  /// merges in parallel (see routeGroups). Mutable so differential tests
  /// can force the parallel path onto small batches.
  static inline size_t BatchParCutoff = 2048;

private:
  /// Scratch-backed (head, merged tail) update buffer for the batch base
  /// cases: the pair's ChunkRef is not trivially destructible, so
  /// CtxArray does not apply — placement-new into borrowed scratch with
  /// explicit destruction instead, mirroring graph.h's GroupedBatchT.
  /// multiInsert's buildSorted copies the refs into tree nodes; the
  /// destructor drops the buffer's own references afterwards.
  class UpdateBuf {
  public:
    using PairT = std::pair<K, ChunkRef<K>>;

    explicit UpdateBuf(size_t MaxGroups)
        : Mem(static_cast<PairT *>(
              ctxAcquire(nullptr, MaxGroups * sizeof(PairT), Cap))) {}
    UpdateBuf(const UpdateBuf &) = delete;
    UpdateBuf &operator=(const UpdateBuf &) = delete;
    ~UpdateBuf() {
      for (size_t I = 0; I < N; ++I)
        Mem[I].~PairT();
      ctxRelease(nullptr, Mem, Cap);
    }

    void emplaceBack(K Head, ChunkRef<K> Tail) {
      new (&Mem[N]) PairT(Head, std::move(Tail));
      ++N;
    }
    /// Indexed construction for parallel fills: setSize first, then
    /// construct every slot exactly once.
    void emplaceAt(size_t I, K Head, ChunkRef<K> Tail) {
      new (&Mem[I]) PairT(Head, std::move(Tail));
    }
    void setSize(size_t Size) { N = Size; }

    PairT *data() { return Mem; }
    size_t size() const { return N; }

  private:
    PairT *Mem;
    size_t Cap;
    size_t N = 0;
  };

  /// Shared group-routing core of unionBC/diffBC (Algorithm 2): route the
  /// sorted batch E[0..NE) to head territories of \p Tr and emit one
  /// (head, MergeFn(head node, span)) update per touched head, in
  /// ascending head order.
  ///
  /// Small batches run the sequential head-walk (one findLE per group,
  /// linear scan to the successor's key). Large batches probe every
  /// element's head with a parallelFor of findLE calls, mark group starts
  /// where the head changes, and merge the groups in parallel. The two
  /// paths produce identical updates — an element's group is determined
  /// by its owning head either way, and each group's span and merge call
  /// are the same — so the result stays byte-identical; which path ran is
  /// invisible outside scheduling.
  template <class MergeFn>
  static void routeGroups(const Node *Tr, const K *E, size_t NE,
                          UpdateBuf &Updates, const MergeFn &Merge) {
    if (NE < BatchParCutoff || !detail::parallelismEnabled()) {
      size_t I = 0;
      while (I < NE) {
        const Node *HN = T::findLE(Tr, E[I]);
        assert(HN && "element below the smallest head reached routing");
        K Head = HN->Key;
        // The group ends where the next head's territory begins.
        const Node *Succ = nextHead(Tr, Head);
        size_t J = I;
        while (J < NE && (!Succ || E[J] < Succ->Key))
          ++J;
        Updates.emplaceBack(Head, ChunkRef<K>(Merge(HN, E + I, J - I)));
        I = J;
      }
      return;
    }
    // Parallel path: per-element head probes (O(log h) each, fully
    // independent), then group starts where the owning head changes.
    CtxArray<const Node *> Heads(NE);
    const Node **HeadsP = Heads.data();
    parallelFor(0, NE, [&](size_t I) { HeadsP[I] = T::findLE(Tr, E[I]); });
    CtxArray<uint32_t> Starts(NE);
    uint32_t *StartsP = Starts.data();
    size_t Groups = filterIndexInto(
        NE, [](size_t I) { return uint32_t(I); },
        [&](size_t I) { return I == 0 || HeadsP[I] != HeadsP[I - 1]; },
        StartsP);
    Updates.setSize(Groups);
    parallelFor(0, Groups, [&](size_t G) {
      size_t Lo = StartsP[G];
      size_t Hi = G + 1 < Groups ? StartsP[G + 1] : NE;
      const Node *HN = HeadsP[Lo];
      assert(HN && "element below the smallest head reached routing");
      Updates.emplaceAt(G, HN->Key, ChunkRef<K>(Merge(HN, E + Lo, Hi - Lo)));
    });
  }

  /// Union of a bare chunk (owned \p P; non-head elements) into C-tree
  /// \p C (Algorithm 2, UnionBC).
  static Raw unionBC(Payload *P, Raw C) {
    if (!P)
      return C;
    if (!C.T) {
      Payload *NP = unionChunks<Codec>(C.P, P);
      releaseChunk(C.P);
      releaseChunk(P);
      return Raw{nullptr, NP};
    }
    K Smallest = T::first(C.T)->Key;
    ChunkSplit CS = splitChunk<Codec>(P, Smallest);
    assert(!CS.Found && "prefix chunks never contain heads");
    releaseChunk(P);
    auto *PL = static_cast<Payload *>(CS.Left);
    auto *PR = static_cast<Payload *>(CS.Right);
    Payload *NP = unionChunks<Codec>(C.P, PL);
    releaseChunk(C.P);
    releaseChunk(PL);
    if (!PR)
      return Raw{C.T, NP};
    // Route each remaining element to its head and merge tails. The batch
    // is the one buffer that must be materialized (group boundaries need
    // random access); it lives in per-thread scratch, and each tail merge
    // streams the old tail against its span straight into the new payload.
    CtxArray<K> E(PR->Count);
    size_t NE = decodeChunkTo<Codec>(PR, E.data());
    releaseChunk(PR);
    UpdateBuf Updates(NE);
    routeGroups(C.T, E.data(), NE, Updates,
                [](const Node *HN, const K *Span, size_t Len) {
                  return unionChunkSpan<Codec>(HN->Val.get(), Span, Len);
                });
    Node *NT = T::multiInsert(
        C.T, Updates.data(), Updates.size(),
        [](ChunkRef<K>, ChunkRef<K> New) { return New; });
    return Raw{NT, NP};
  }

  /// Smallest head strictly greater than \p H.
  static const Node *nextHead(const Node *Tr, K H) {
    const Node *Cand = nullptr;
    while (Tr) {
      if (H < Tr->Key) {
        Cand = Tr;
        Tr = Tr->Left;
      } else {
        Tr = Tr->Right;
      }
    }
    return Cand;
  }

  static Raw rawUnion(Raw A, Raw B) {
    if (A.empty())
      return B;
    if (B.empty())
      return A;
    if (!B.T)
      return unionBC(B.P, A);
    if (!A.T)
      return unionBC(A.P, B);
    typename T::Exposed E = T::expose(B.T);
    K H = E.Shell->Key;
    RawSplit S = rawSplit(A, H);
    Payload *V = E.Shell->Val.take();
    Raw L, R;
    bool Par = T::size(S.Left.T) + T::size(E.Left) +
                       T::size(S.Right.T) + T::size(E.Right) >=
                   T::SeqCutoff ||
               T::workOf(S.Left.T) + T::workOf(E.Left) +
                       T::workOf(S.Right.T) + T::workOf(E.Right) >=
                   T::WorkCutoff;
    auto DoL = [&] { L = rawUnion(S.Left, Raw{E.Left, B.P}); };
    auto DoR = [&] { R = rawUnion(S.Right, Raw{E.Right, V}); };
    if (Par)
      parallelDo(DoL, DoR);
    else {
      DoL();
      DoR();
    }
    // R's prefix holds exactly the merged elements between H and the next
    // head: H's new tail.
    E.Shell->Val = ChunkRef<K>(R.P);
    return Raw{T::join(L.T, E.Shell, R.T), L.P};
  }

  /// Subtract the elements of owned chunk \p Sub from \p A.
  static Raw diffBC(Raw A, Payload *Sub) {
    if (!Sub)
      return A;
    if (!A.T) {
      // Prefix-only: both sides stream, nothing is materialized.
      Payload *NP = chunkMinusChunk<Codec>(A.P, Sub);
      releaseChunk(A.P);
      releaseChunk(Sub);
      return Raw{nullptr, NP};
    }
    // Materialize the subtrahend in per-thread scratch for group routing;
    // each group subtraction streams over a span of it.
    CtxArray<K> S(Sub->Count);
    size_t NS = decodeChunkTo<Codec>(Sub, S.data());
    releaseChunk(Sub);
    K Smallest = T::first(A.T)->Key;
    size_t Cut = 0;
    while (Cut < NS && S[Cut] < Smallest)
      ++Cut;
    Payload *NP = chunkMinus<Codec>(A.P, S.data(), Cut);
    releaseChunk(A.P);
    UpdateBuf Updates(NS - Cut);
    routeGroups(A.T, S.data() + Cut, NS - Cut, Updates,
                [](const Node *HN, const K *Span, size_t Len) {
                  return chunkMinus<Codec>(HN->Val.get(), Span, Len);
                });
    Node *NT = T::multiInsert(
        A.T, Updates.data(), Updates.size(),
        [](ChunkRef<K>, ChunkRef<K> New) { return New; });
    return Raw{NT, NP};
  }

  static Raw rawDifference(Raw A, Raw B) {
    if (A.empty()) {
      releaseRaw(B);
      return Raw{};
    }
    if (B.empty())
      return A;
    if (!B.T)
      return diffBC(A, B.P);
    if (!A.T) {
      // Keep prefix elements of A absent from B: stream A's prefix
      // through a membership filter straight into the result payload.
      CTreeSet BView = fromRaw(B); // adopt for reads; released at exit
      Payload *NP = buildChunkStreaming<Codec, K>(
          chunkCount(A.P), [&](auto &&Sink) {
        for (typename Codec::template Cursor<K> Cu(A.P); !Cu.done();
             Cu.advance())
          if (!BView.contains(Cu.value()))
            Sink(Cu.value());
      });
      releaseChunk(A.P);
      return Raw{nullptr, NP};
    }
    typename T::Exposed E = T::expose(B.T);
    K H = E.Shell->Key;
    RawSplit S = rawSplit(A, H); // drops H from A when present
    Payload *V = E.Shell->Val.take();
    T::freeShell(E.Shell);
    Raw L, R;
    bool Par = T::size(S.Left.T) + T::size(E.Left) +
                       T::size(S.Right.T) + T::size(E.Right) >=
                   T::SeqCutoff ||
               T::workOf(S.Left.T) + T::workOf(E.Left) +
                       T::workOf(S.Right.T) + T::workOf(E.Right) >=
                   T::WorkCutoff;
    auto DoL = [&] { L = rawDifference(S.Left, Raw{E.Left, B.P}); };
    auto DoR = [&] { R = rawDifference(S.Right, Raw{E.Right, V}); };
    if (Par)
      parallelDo(DoL, DoR);
    else {
      DoL();
      DoR();
    }
    return rawJoin2(L, R);
  }

  static Raw rawIntersect(Raw A, Raw B) {
    if (A.empty() || B.empty()) {
      releaseRaw(A);
      releaseRaw(B);
      return Raw{};
    }
    if (!B.T || !A.T) {
      // One side is a bare chunk: the intersection consists of non-head
      // elements only, hence is prefix-only. Stream the chunk through a
      // membership filter.
      Raw ChunkSide = !B.T ? B : A;
      Raw TreeSide = !B.T ? A : B;
      CTreeSet View = fromRaw(TreeSide);
      Payload *NP = buildChunkStreaming<Codec, K>(
          chunkCount(ChunkSide.P), [&](auto &&Sink) {
        for (typename Codec::template Cursor<K> Cu(ChunkSide.P); !Cu.done();
             Cu.advance())
          if (View.contains(Cu.value()))
            Sink(Cu.value());
      });
      releaseChunk(ChunkSide.P);
      return Raw{nullptr, NP};
    }
    typename T::Exposed E = T::expose(B.T);
    K H = E.Shell->Key;
    RawSplit S = rawSplit(A, H);
    Payload *V = E.Shell->Val.take();
    Raw L, R;
    bool Par = T::size(S.Left.T) + T::size(E.Left) +
                       T::size(S.Right.T) + T::size(E.Right) >=
                   T::SeqCutoff ||
               T::workOf(S.Left.T) + T::workOf(E.Left) +
                       T::workOf(S.Right.T) + T::workOf(E.Right) >=
                   T::WorkCutoff;
    auto DoL = [&] { L = rawIntersect(S.Left, Raw{E.Left, B.P}); };
    auto DoR = [&] { R = rawIntersect(S.Right, Raw{E.Right, V}); };
    if (Par)
      parallelDo(DoL, DoR);
    else {
      DoL();
      DoR();
    }
    if (S.Found) {
      // H survives; R's prefix is its new tail.
      E.Shell->Val = ChunkRef<K>(R.P);
      return Raw{T::join(L.T, E.Shell, R.T), L.P};
    }
    T::freeShell(E.Shell);
    return rawJoin2(L, R);
  }

  Node *Root = nullptr;
  Payload *Prefix = nullptr;
};

} // namespace aspen

#endif // ASPEN_CTREE_CTREE_H
