//===- ctree/chunk.h - Compressed element chunks ---------------------------===//
//
// Chunks are the tails/prefixes of the C-tree (Section 3.1): immutable,
// reference-counted arrays of sorted elements. The header stores the first
// and last elements so Split does O(1) work per node visited (Section 4.1),
// and the element count so C-tree sizes are O(1) via augmentation.
//
// Two codecs (Section 3.2):
//  * DeltaByteCodec - difference encoding + variable-length byte codes
//    ("Aspen (DE)" in Table 2).
//  * RawCodec       - plain element array ("Aspen (No DE)").
//
// Every codec exposes two streaming readers over one chunk's elements:
//
//  * Cursor - scalar, one element per advance(), byte offsets tracked
//    from the varint position. Early-exit scans (chunkContains,
//    splitChunk's seekLowerBound) and the one-pass set merges use it:
//    those access patterns decode exactly the elements they inspect.
//  * BlockCursor - block-decoded: a refill decodes up to
//    BlockVarintCursor::BlockElts gaps through the SSSE3/SWAR tiers of
//    encoding/varint_block.h and prefix-sums them into absolute
//    elements, and iterate() walks the resulting arrays with tight
//    inner loops. Bulk traversal (forEachSeq/forEachIndexed/iterCond,
//    hence the whole edge-map surface) runs on this path, where whole
//    chunks stream and wide decoding wins.
//
// All set operations below are one-pass cursor merges: elements stream
// from the input cursors through a bounded single-pass encoder into
// per-thread scratch (capacity known from the input counts), then one
// memcpy lands them in the exactly-sized payload. No operation
// materializes a decoded element array; the only allocation on any hot
// path is the output payload itself.
//
// Two operations go further and move encoded bytes instead of re-encoding
// elements, exploiting that a chunk's encoding after element i is
// independent of elements before i:
//  * Split byte-slices the encoded stream - both halves are header
//    fix-ups plus a memcpy.
//  * The set merges (union / minus / intersect) detect maximal runs of
//    consecutive output elements drawn from one input whose encodings are
//    contiguous, and memcpy those runs between switch points; only the
//    first gap after each switch is re-encoded. The produced encodings
//    are byte-identical to the element-at-a-time merges (the *Streaming
//    reference implementations below), which the differential tests
//    assert.
//
// Chunks are immutable after construction, so sharing them between tree
// versions is a reference-count bump; all "modifications" build new chunks.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_CTREE_CHUNK_H
#define ASPEN_CTREE_CHUNK_H

#include "encoding/byte_code.h"
#include "encoding/varint_block.h"
#include "memory/algo_context.h"
#include "memory/pool_allocator.h"
#include "util/hash.h"

#include <algorithm>

#include <atomic>
#include <cassert>
#include <cstring>
#include <type_traits>
#include <vector>

namespace aspen {

/// Header of a chunk payload; the encoded elements follow contiguously.
template <class K> struct ChunkPayload {
  std::atomic<uint32_t> Ref;
  uint32_t Count; ///< Number of elements (>= 1).
  uint32_t Bytes; ///< Encoded size of elements after the first.
  K First;        ///< Smallest element; base of difference encoding.
  K Last;         ///< Largest element (O(1) Split checks).

  uint8_t *data() { return reinterpret_cast<uint8_t *>(this + 1); }
  const uint8_t *data() const {
    return reinterpret_cast<const uint8_t *>(this + 1);
  }
};

namespace detail {

/// Shared bulk-iteration body: walk a block cursor's decoded windows
/// with a tight inner loop over the plain value array. Fn returns false
/// to stop early; returns false iff stopped early.
template <class K, class BC, class F>
bool iterateBlocks(BC Cu, const F &Fn) {
  do {
    const auto *V = Cu.blockValues();
    uint32_t L = Cu.blockLen();
    for (uint32_t I = Cu.blockPos(); I < L; ++I)
      if (!Fn(static_cast<K>(V[I])))
        return false;
  } while (Cu.nextBlock());
  return true;
}

} // namespace detail

/// Difference coding with byte codes: element i>0 is stored as the varint
/// of E[i] - E[i-1] (strictly increasing, so deltas >= 1).
struct DeltaByteCodec {
  static constexpr const char *Name = "delta-byte";

  /// Encoded size of the gap between consecutive elements.
  template <class K> static size_t gapBytes(K Prev, K Next) {
    return varintSize(static_cast<uint64_t>(Next) -
                      static_cast<uint64_t>(Prev));
  }

  /// Upper bound on gapBytes for any pair of K values.
  template <class K> static constexpr size_t maxGapBytes() {
    return (sizeof(K) * 8 + 6) / 7;
  }

  /// Append the encoding of the gap Prev -> Next at \p Out; returns the
  /// byte past it.
  template <class K>
  static uint8_t *encodeGap(K Prev, K Next, uint8_t *Out) {
    return encodeVarint(static_cast<uint64_t>(Next) -
                            static_cast<uint64_t>(Prev),
                        Out);
  }

  template <class K> static size_t encodedBytes(const K *E, size_t N) {
    size_t Bytes = 0;
    for (size_t I = 1; I < N; ++I)
      Bytes += gapBytes(E[I - 1], E[I]);
    return Bytes;
  }

  template <class K>
  static void encode(const K *E, size_t N, uint8_t *Out, size_t Cap) {
    VarintWriter W(Out, Cap);
    for (size_t I = 1; I < N; ++I)
      W.append(static_cast<uint64_t>(E[I]) - static_cast<uint64_t>(E[I - 1]));
  }

  /// Streaming scalar reader over one chunk's elements: one gap decoded
  /// per advance(), byte offsets tracked for free from the varint
  /// cursor's position. This is the seek/merge cursor: early-exit scans
  /// (chunkContains, splitChunk) and the one-pass set merges decode
  /// exactly the elements they look at, which measures faster than
  /// decode-ahead blocks for those access patterns. Bulk sequential
  /// traversal goes through BlockCursor below instead.
  template <class K> class Cursor {
  public:
    Cursor() = default;
    explicit Cursor(const ChunkPayload<K> *C) {
      if (!C)
        return;
      Cur = C->First;
      Begin = C->data();
      Rest = VarintCursor(Begin, C->Count - 1);
      Left = C->Count;
    }

    bool done() const { return Left == 0; }
    uint32_t remaining() const { return Left; }
    K value() const {
      assert(Left > 0 && "value() on exhausted cursor");
      return Cur;
    }

    void advance() {
      assert(Left > 0 && "advance() on exhausted cursor");
      --Left;
      if (Left)
        Cur = static_cast<K>(static_cast<uint64_t>(Cur) + Rest.next());
    }

    /// Bytes of encoded elements consumed so far: the encodings of
    /// elements [1 .. index] (element 0 lives in the header).
    size_t byteOffset() const {
      return static_cast<size_t>(Rest.pos() - Begin);
    }

    /// Advance to the first element >= Key (or done()). prevValue() /
    /// prevByteOffset() then describe the last element < Key, when the
    /// seek moved past at least one element.
    void seekLowerBound(K Key) {
      while (Left && Cur < Key) {
        Prev = Cur;
        PrevOff = byteOffset();
        advance();
      }
    }

    K prevValue() const { return Prev; }
    size_t prevByteOffset() const { return PrevOff; }

  private:
    K Cur{};
    K Prev{};
    VarintCursor Rest;
    const uint8_t *Begin = nullptr;
    size_t PrevOff = 0;
    uint32_t Left = 0;
  };

  /// Block-decoded reader over one chunk's elements. A refill
  /// block-decodes up to BlockVarintCursor::BlockElts gaps at once
  /// (SSSE3 shuffle table or SWAR words, see encoding/varint_block.h)
  /// and prefix-sums them into a buffer of *absolute* elements, so
  /// value() is a load and advance() an increment. This is the bulk
  /// traversal cursor (iterate / forEachSeq / the edge-map surface),
  /// where whole chunks stream and wide decoding wins; it also tracks
  /// per-element end offsets, so it satisfies the same byte-offset
  /// contract as Cursor.
  template <class K> class BlockCursor {
  public:
    static constexpr uint32_t BlockElts = BlockVarintCursor::BlockElts;

    /// Decoded-element buffer type: 32-bit keys decode through the
    /// narrow-kernel variant (gaps and absolute elements both fit 32
    /// bits), halving buffer and store traffic.
    using BufT = std::conditional_t<(sizeof(K) > 4), uint64_t, uint32_t>;

    BlockCursor() = default;
    explicit BlockCursor(const ChunkPayload<K> *C) {
      if (!C)
        return;
      In = C->data();
      Gaps = C->Count - 1;
      Buf[0] = C->First;
      EndOff[0] = 0;
      Len = 1;
    }

    bool done() const { return Pos == Len; }
    uint32_t remaining() const { return (Len - Pos) + uint32_t(Gaps); }
    K value() const {
      assert(!done() && "value() on exhausted cursor");
      return static_cast<K>(Buf[Pos]);
    }

    void advance() {
      assert(!done() && "advance() on exhausted cursor");
      ++Pos;
      if (Pos == Len && Gaps)
        refill();
    }

    /// Bytes of encoded elements consumed so far: the encodings of
    /// elements [1 .. index] (element 0 lives in the header). Only valid
    /// while !done(). (Seeking stays on the scalar Cursor; this cursor
    /// tracks offsets so bulk consumers can still slice runs.)
    size_t byteOffset() const { return EndOff[Pos]; }

    /// Block-bulk access for sequential consumers: the decoded elements
    /// of the current block are blockValues()[blockPos() .. blockLen()),
    /// a plain array the compiler keeps register-resident loops over.
    /// nextBlock() consumes the whole window and decodes the next one
    /// (false when the chunk is exhausted).
    const BufT *blockValues() const { return Buf; }
    uint32_t blockPos() const { return Pos; }
    uint32_t blockLen() const { return Len; }
    bool nextBlock() {
      Pos = Len;
      if (!Gaps)
        return false;
      refill();
      return true;
    }

  private:
    /// Cold path: kept out of line so the consumer loop (value/advance)
    /// compiles tight. Invariant: called only with Gaps > 0; afterwards
    /// Pos < Len.
    void refill() {
      BufT Base = Buf[Len - 1];
      uint32_t Off = EndOff[Len - 1];
      // The first refill is small, so short seeks (contains, split near
      // the front) decode little ahead; later refills use full blocks.
      size_t Want = Gaps < NextWant ? Gaps : size_t(NextWant);
      NextWant = BlockElts;
      size_t Got = decodeVarintBlock(In, Gaps, Want, Buf, EndOff, Off);
      Gaps -= Got;
      for (size_t I = 0; I < Got; ++I) {
        Base += Buf[I];
        Buf[I] = Base;
      }
      Len = uint32_t(Got);
      Pos = 0;
    }

    BufT Buf[BlockElts + VarintBlockSlack];
    uint32_t EndOff[BlockElts + VarintBlockSlack];
    const uint8_t *In = nullptr;
    size_t Gaps = 0;
    uint32_t Pos = 0;
    uint32_t Len = 0;
    uint32_t NextWant = 8;
  };

  /// Invoke Fn on each element in order; Fn returns false to stop early.
  /// Returns false iff stopped early. When the SSSE3 decode tier is
  /// live, consumes whole decoded blocks through BlockCursor's bulk
  /// interface (the inner loop runs over a plain array); on the portable
  /// SWAR-only tier the scalar cursor measures faster, so it is used
  /// instead - the tier check is one predictable branch per chunk.
  template <class K, class F>
  static bool iterate(const ChunkPayload<K> *C, const F &Fn) {
    if (!C)
      return true;
    if (!blockDecodeUsesSSSE3()) {
      for (Cursor<K> Cu(C); !Cu.done(); Cu.advance())
        if (!Fn(Cu.value()))
          return false;
      return true;
    }
    return detail::iterateBlocks<K>(BlockCursor<K>(C), Fn);
  }
};

/// No compression: elements after the first stored as raw K values.
struct RawCodec {
  static constexpr const char *Name = "raw";

  template <class K> static size_t gapBytes(K, K) { return sizeof(K); }

  template <class K> static constexpr size_t maxGapBytes() {
    return sizeof(K);
  }

  template <class K>
  static uint8_t *encodeGap(K, K Next, uint8_t *Out) {
    std::memcpy(Out, &Next, sizeof(K));
    return Out + sizeof(K);
  }

  template <class K> static size_t encodedBytes(const K *, size_t N) {
    return N > 1 ? (N - 1) * sizeof(K) : 0;
  }

  template <class K>
  static void encode(const K *E, size_t N, uint8_t *Out, size_t) {
    if (N > 1)
      std::memcpy(Out, E + 1, (N - 1) * sizeof(K));
  }

  /// Raw payloads ARE element arrays (after the header-held first
  /// element), so the cursor's block interface is zero-copy: block 0 is
  /// the header element, block 1 the payload itself.
  template <class K> class Cursor {
  public:
    using BufT = K;

    Cursor() = default;
    explicit Cursor(const ChunkPayload<K> *C) {
      if (!C)
        return;
      FirstBuf = C->First;
      Data = reinterpret_cast<const AliasK *>(C->data());
      Count = C->Count;
      L = 1;
    }

    bool done() const { return I == L; }
    uint32_t remaining() const { return remainingFrom(I); }
    K value() const {
      assert(!done() && "value() on exhausted cursor");
      return blockValues()[I];
    }
    void advance() {
      assert(!done() && "advance() on exhausted cursor");
      ++I;
      if (I == L)
        nextBlock();
    }

    size_t byteOffset() const { return byteOffsetAt(I); }

    /// O(log count): raw chunks support true binary search.
    void seekLowerBound(K Key) {
      if (done() || value() >= Key)
        return;
      for (;;) {
        // Invariant: BV[I] < Key; find the in-block lower bound.
        const BufT *BV = blockValues();
        uint32_t Lo = I, Hi = L;
        while (Hi - Lo > 1) {
          uint32_t Mid = Lo + (Hi - Lo) / 2;
          if (BV[Mid] < Key)
            Lo = Mid;
          else
            Hi = Mid;
        }
        Prev = BV[Lo];
        PrevOff = byteOffsetAt(Lo);
        I = Hi;
        if (I < L)
          return;
        if (!nextBlock() || value() >= Key)
          return;
      }
    }

    K prevValue() const { return Prev; }
    size_t prevByteOffset() const { return PrevOff; }

    /// Block-bulk interface (see DeltaByteCodec::Cursor): elements
    /// blockValues()[blockPos() .. blockLen()), nextBlock() to continue.
    /// The pointer is computed, never cached, so cursors stay safely
    /// copyable (block 0 lives in the cursor object itself).
    const BufT *blockValues() const { return Tail ? Data : &FirstBuf; }
    uint32_t blockPos() const { return I; }
    uint32_t blockLen() const { return L; }
    bool nextBlock() {
      if (Tail || Count <= 1) {
        I = L;
        return false;
      }
      Tail = true;
      I = 0;
      L = Count - 1;
      return true;
    }
    size_t byteOffsetAt(uint32_t J) const {
      return Tail ? size_t(J + 1) * sizeof(K) : 0;
    }
    size_t remainingFrom(uint32_t J) const {
      return (L - J) + (Tail || Count <= 1 ? 0 : size_t(Count) - 1);
    }

  private:
    // The payload bytes were written as raw element images; allow the
    // typed view to alias them.
    using AliasK = K __attribute__((may_alias));

    K FirstBuf{};
    K Prev{};
    const AliasK *Data = nullptr;
    size_t PrevOff = 0;
    uint32_t I = 0;
    uint32_t L = 0;
    uint32_t Count = 0;
    bool Tail = false;
  };

  /// Raw cursors serve both roles (O(1) element access, zero-copy
  /// blocks), so the bulk-cursor name is an alias.
  template <class K> using BlockCursor = Cursor<K>;

  template <class K, class F>
  static bool iterate(const ChunkPayload<K> *C, const F &Fn) {
    if (!C)
      return true;
    return detail::iterateBlocks<K>(Cursor<K>(C), Fn);
  }
};

//===----------------------------------------------------------------------===
// Chunk operations. All functions hand back payloads with one reference
// owned by the caller; nullptr represents the empty chunk.
//===----------------------------------------------------------------------===

template <class K> void retainChunk(ChunkPayload<K> *C) {
  if (C)
    C->Ref.fetch_add(1, std::memory_order_relaxed);
}

template <class K> void releaseChunk(ChunkPayload<K> *C) {
  if (!C)
    return;
  if (C->Ref.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    size_t Total = sizeof(ChunkPayload<K>) + C->Bytes;
    C->~ChunkPayload<K>();
    countedFree(C, Total);
  }
}

/// Cursor-concept adapter over a sorted span, matching the codec cursors'
/// done/value/advance/remaining surface so merge bodies are shared between
/// chunk-vs-chunk and chunk-vs-span operations.
template <class K> class SpanCursor {
public:
  SpanCursor() = default;
  SpanCursor(const K *E, size_t N) : E(E), N(N) {}

  bool done() const { return I == N; }
  size_t remaining() const { return N - I; }
  K value() const {
    assert(I < N && "value() on exhausted cursor");
    return E[I];
  }
  void advance() {
    assert(I < N && "advance() on exhausted cursor");
    ++I;
  }

private:
  const K *E = nullptr;
  size_t I = 0;
  size_t N = 0;
};

namespace detail {

/// The three streaming set-merge bodies, over any pair of cursors. Each
/// consumes its cursors (taken by value) and emits a strictly increasing
/// stream into \p Sink.

template <class CA, class CB, class Sink>
void mergeUnion(CA A, CB B, const Sink &S) {
  while (!A.done() && !B.done()) {
    auto VA = A.value(), VB = B.value();
    if (VA < VB) {
      S(VA);
      A.advance();
    } else if (VB < VA) {
      S(VB);
      B.advance();
    } else {
      S(VA);
      A.advance();
      B.advance();
    }
  }
  for (; !A.done(); A.advance())
    S(A.value());
  for (; !B.done(); B.advance())
    S(B.value());
}

/// Elements of A not present in B.
template <class CA, class CB, class Sink>
void mergeMinus(CA A, CB B, const Sink &S) {
  for (; !A.done(); A.advance()) {
    auto V = A.value();
    while (!B.done() && B.value() < V)
      B.advance();
    if (!B.done() && B.value() == V)
      continue;
    S(V);
  }
}

/// Elements of A also present in B.
template <class CA, class CB, class Sink>
void mergeIntersect(CA A, CB B, const Sink &S) {
  for (; !A.done(); A.advance()) {
    auto V = A.value();
    while (!B.done() && B.value() < V)
      B.advance();
    if (!B.done() && B.value() == V)
      S(V);
  }
}

/// Allocate a payload with the given header; the encoded region is left
/// for the caller to fill (exactly \p Bytes bytes).
template <class K>
ChunkPayload<K> *allocChunk(K First, K Last, uint32_t Count, size_t Bytes) {
  void *Mem = countedAlloc(sizeof(ChunkPayload<K>) + Bytes);
  auto *C = new (Mem) ChunkPayload<K>();
  C->Ref.store(1, std::memory_order_relaxed);
  C->Count = Count;
  C->Bytes = static_cast<uint32_t>(Bytes);
  C->First = First;
  C->Last = Last;
  return C;
}

/// Payload whose encoded region is a verbatim copy of \p Src (valid
/// because a chunk's encoding from any element onward is position-
/// independent under both codecs).
template <class K>
ChunkPayload<K> *sliceChunk(K First, K Last, uint32_t Count,
                            const uint8_t *Src, size_t Bytes) {
  ChunkPayload<K> *C = allocChunk(First, Last, Count, Bytes);
  std::memcpy(C->data(), Src, Bytes);
  return C;
}

//===----------------------------------------------------------------------===
// Run-level byte-copy merging. A chunk's encoding of element i (i >= 1)
// depends only on element i-1, so whenever a merge emits a stretch of
// consecutive same-input elements, their original encoded bytes are
// already exactly what the output needs: only the first gap after a
// switch between inputs must be re-encoded. The emitter below writes the
// merge output into scratch either gap-by-gap (emit) or as memcpy'd runs
// (copyRun); the switch-point detection lives in the individual merge
// bodies, which find run boundaries by comparing against the other
// input's next element.
//===----------------------------------------------------------------------===

/// Byte-level output builder shared by the run-copy merges. Tracks the
/// header fields (first/last/count) while the payload bytes accumulate in
/// caller-provided scratch.
template <class Codec, class K> class RunEmitter {
public:
  explicit RunEmitter(uint8_t *Out) : Out(Out) {}

  /// Append one element, re-encoding its gap from the previous output.
  void emit(K V) {
    if (Count)
      Out = Codec::template encodeGap<K>(Prev, V, Out);
    else
      First = V;
    Prev = V;
    ++Count;
  }

  /// Append \p Bytes of original encoding holding \p Extra elements that
  /// directly follow the previously emitted element in their source
  /// chunk; \p LastV is the last of them.
  void copyRun(const uint8_t *Src, size_t Bytes, uint32_t Extra, K LastV) {
    // Interleaved merges produce many short runs; a bounded byte loop
    // beats a memcpy call for those.
    if (Bytes <= 8) {
      for (size_t B = 0; B < Bytes; ++B)
        Out[B] = Src[B];
    } else {
      std::memcpy(Out, Src, Bytes);
    }
    Out += Bytes;
    Count += Extra;
    Prev = LastV;
  }

  uint8_t *out() const { return Out; }
  uint32_t count() const { return Count; }
  K first() const { return First; }
  K last() const { return Prev; }

private:
  uint8_t *Out;
  K First{};
  K Prev{};
  uint32_t Count = 0;
};

/// Emit cursor \p S's current element (one re-encoded gap), then
/// byte-copy the maximal following run of \p S elements strictly below
/// \p Bound. Leaves S past the run.
template <class Codec, class K, class Cur>
__attribute__((always_inline)) inline void
copyRunBelow(RunEmitter<Codec, K> &Em, Cur &S, const ChunkPayload<K> *SP,
             K Bound) {
  K V0 = S.value();
  Em.emit(V0);
  size_t Start = S.byteOffset();
  size_t End = Start;
  K LastV = V0;
  uint32_t Extra = 0;
  S.advance();
  while (!S.done() && S.value() < Bound) {
    LastV = S.value();
    End = S.byteOffset();
    ++Extra;
    S.advance();
  }
  if (Extra)
    Em.copyRun(SP->data() + Start, End - Start, Extra, LastV);
}

/// Emit cursor \p S's current element, then byte-copy everything that
/// remains of its chunk in one memcpy (no further decoding - the big win
/// when merges drain a long disjoint tail).
template <class Codec, class K, class Cur>
__attribute__((always_inline)) inline void
drainRun(RunEmitter<Codec, K> &Em, Cur &S, const ChunkPayload<K> *SP) {
  K V0 = S.value();
  Em.emit(V0);
  uint32_t Extra = uint32_t(S.remaining()) - 1;
  if (Extra) {
    size_t Start = S.byteOffset();
    Em.copyRun(SP->data() + Start, SP->Bytes - Start, Extra, SP->Last);
  }
}

/// Land the emitter's output in an exactly-sized payload (nullptr when
/// nothing was emitted). Takes the emitter's fields by value so the
/// emitter object itself never escapes the merge loop's frame (keeping
/// it register-resident).
template <class K>
ChunkPayload<K> *finishRunCopy(const uint8_t *Buf, const uint8_t *Out,
                               uint32_t Count, K First, K Last) {
  if (!Count)
    return nullptr;
  size_t Bytes = static_cast<size_t>(Out - Buf);
  ChunkPayload<K> *C = allocChunk(First, Last, Count, Bytes);
  std::memcpy(C->data(), Buf, Bytes);
  return C;
}

/// Convenience overload reading the fields out of the emitter inline.
template <class Codec, class K>
__attribute__((always_inline)) inline ChunkPayload<K> *
finishRunCopy(const RunEmitter<Codec, K> &Em, const uint8_t *Buf) {
  return finishRunCopy<K>(Buf, Em.out(), Em.count(), Em.first(),
                          Em.last());
}

} // namespace detail

/// Build a chunk from \p N sorted, duplicate-free elements (nullptr if
/// N == 0).
template <class Codec, class K>
ChunkPayload<K> *makeChunk(const K *E, size_t N) {
  if (N == 0)
    return nullptr;
  size_t Bytes = Codec::template encodedBytes<K>(E, N);
  ChunkPayload<K> *C =
      detail::allocChunk(E[0], E[N - 1], static_cast<uint32_t>(N), Bytes);
  Codec::template encode<K>(E, N, C->data(), Bytes);
  return C;
}

/// Build a chunk by running the element generator \p G once, encoding as
/// it goes: a bounded single-pass encode into per-thread scratch (capacity
/// maxGapBytes * MaxCount, an upper bound every set operation knows from
/// its input counts), then one memcpy into the exactly-sized payload.
/// \p G invokes its sink with each output element in strictly increasing
/// order; \p MaxCount must bound the number of elements it emits. Returns
/// nullptr for an empty stream. This is the zero-materialization workhorse
/// behind every chunk set operation: the payload is the only allocation,
/// and only the scratch cache's first warm-up ever touches the heap.
template <class Codec, class K, class Gen>
ChunkPayload<K> *buildChunkStreaming(size_t MaxCount, const Gen &G) {
  if (MaxCount == 0)
    return nullptr;
  size_t CapBytes = MaxCount * Codec::template maxGapBytes<K>();
  CtxArray<uint8_t> Scratch(CapBytes);
  uint8_t *Buf = Scratch.data();
  uint8_t *Out = Buf;
  uint32_t N = 0;
  K First{}, Prev{};
  G([&](K V) {
    assert((N == 0 || Prev < V) && "stream must be strictly increasing");
    if (N)
      Out = Codec::template encodeGap<K>(Prev, V, Out);
    else
      First = V;
    Prev = V;
    ++N;
  });
  assert(N <= MaxCount && "generator exceeded its element bound");
  assert(size_t(Out - Buf) <= CapBytes && "encode overran the gap bound");
  ChunkPayload<K> *C = nullptr;
  if (N) {
    size_t Bytes = static_cast<size_t>(Out - Buf);
    C = detail::allocChunk(First, Prev, N, Bytes);
    std::memcpy(C->data(), Buf, Bytes);
  }
  return C;
}

template <class K> uint32_t chunkCount(const ChunkPayload<K> *C) {
  return C ? C->Count : 0;
}

template <class K> size_t chunkBytes(const ChunkPayload<K> *C) {
  return C ? sizeof(ChunkPayload<K>) + C->Bytes : 0;
}

/// Append the chunk's elements to \p Out (test/compat helper; hot paths
/// use cursors or decodeChunkTo into scratch).
template <class Codec, class K>
void decodeChunk(const ChunkPayload<K> *C, std::vector<K> &Out) {
  if (!C)
    return;
  Out.reserve(Out.size() + C->Count);
  Codec::template iterate<K>(C, [&](K V) {
    Out.push_back(V);
    return true;
  });
}

/// Decode into a caller-provided buffer of capacity >= chunkCount(C);
/// returns the element count.
template <class Codec, class K>
size_t decodeChunkTo(const ChunkPayload<K> *C, K *Out) {
  size_t N = 0;
  for (typename Codec::template Cursor<K> Cu(C); !Cu.done(); Cu.advance())
    Out[N++] = Cu.value();
  return N;
}

/// Membership test. Header bounds give O(1) answers at both ends (First
/// and Last symmetric); otherwise a lower-bound seek: O(log b) for raw
/// chunks, early-exiting scan for delta chunks.
template <class Codec, class K>
bool chunkContains(const ChunkPayload<K> *C, K X) {
  if (!C || X < C->First || X > C->Last)
    return false;
  if (X == C->First || X == C->Last)
    return true;
  typename Codec::template Cursor<K> Cu(C);
  Cu.seekLowerBound(X);
  return !Cu.done() && Cu.value() == X;
}

//===----------------------------------------------------------------------===
// Streaming reference merges: the element-at-a-time cursor merges (every
// gap re-encoded). The run-copy implementations below produce
// byte-identical payloads; these remain as the differential-test oracle
// and the bench baseline.
//===----------------------------------------------------------------------===

/// unionChunks, element at a time (no byte concatenation or run copy).
template <class Codec, class K>
ChunkPayload<K> *unionChunksStreaming(const ChunkPayload<K> *A,
                                      const ChunkPayload<K> *B) {
  if (!A || !B) {
    auto *R = const_cast<ChunkPayload<K> *>(A ? A : B);
    retainChunk(R);
    return R;
  }
  return buildChunkStreaming<Codec, K>(
      size_t(A->Count) + B->Count, [&](auto &&Sink) {
        detail::mergeUnion(typename Codec::template Cursor<K>(A),
                           typename Codec::template Cursor<K>(B), Sink);
      });
}

/// unionChunkSpan, element at a time.
template <class Codec, class K>
ChunkPayload<K> *unionChunkSpanStreaming(const ChunkPayload<K> *A,
                                         const K *B, size_t NB) {
  if (NB == 0) {
    auto *R = const_cast<ChunkPayload<K> *>(A);
    retainChunk(R);
    return R;
  }
  if (!A)
    return makeChunk<Codec>(B, NB);
  return buildChunkStreaming<Codec, K>(A->Count + NB, [&](auto &&Sink) {
    detail::mergeUnion(typename Codec::template Cursor<K>(A),
                       SpanCursor<K>(B, NB), Sink);
  });
}

/// chunkMinus (span subtrahend), element at a time.
template <class Codec, class K>
ChunkPayload<K> *chunkMinusStreaming(const ChunkPayload<K> *A,
                                     const K *Sub, size_t NSub) {
  if (!A)
    return nullptr;
  return buildChunkStreaming<Codec, K>(A->Count, [&](auto &&Sink) {
    detail::mergeMinus(typename Codec::template Cursor<K>(A),
                       SpanCursor<K>(Sub, NSub), Sink);
  });
}

/// chunkMinusChunk, element at a time.
template <class Codec, class K>
ChunkPayload<K> *chunkMinusChunkStreaming(const ChunkPayload<K> *A,
                                          const ChunkPayload<K> *Sub) {
  if (!A)
    return nullptr;
  return buildChunkStreaming<Codec, K>(A->Count, [&](auto &&Sink) {
    detail::mergeMinus(typename Codec::template Cursor<K>(A),
                       typename Codec::template Cursor<K>(Sub), Sink);
  });
}

/// chunkIntersect (span), element at a time.
template <class Codec, class K>
ChunkPayload<K> *chunkIntersectStreaming(const ChunkPayload<K> *A,
                                         const K *Keep, size_t NKeep) {
  if (!A || NKeep == 0)
    return nullptr;
  return buildChunkStreaming<Codec, K>(
      A->Count < NKeep ? A->Count : uint32_t(NKeep), [&](auto &&Sink) {
        detail::mergeIntersect(typename Codec::template Cursor<K>(A),
                               SpanCursor<K>(Keep, NKeep), Sink);
      });
}

//===----------------------------------------------------------------------===
// Run-copy set operations (the defaults).
//===----------------------------------------------------------------------===

/// Merge two sorted chunks, removing duplicates. One pass per side; no
/// decoded intermediates. Disjoint ordered ranges (the common case when a
/// tail meets the next subtree's prefix) degrade to byte concatenation;
/// overlapping ranges copy maximal non-interleaved encoded runs between
/// switch points and re-encode only the first gap after each switch.
template <class Codec, class K>
ChunkPayload<K> *unionChunks(const ChunkPayload<K> *A,
                             const ChunkPayload<K> *B) {
  if (!A) {
    auto *R = const_cast<ChunkPayload<K> *>(B);
    retainChunk(R);
    return R;
  }
  if (!B) {
    auto *R = const_cast<ChunkPayload<K> *>(A);
    retainChunk(R);
    return R;
  }
  if (B->Last < A->First)
    std::swap(A, B);
  if (A->Last < B->First) {
    // Disjoint: A's bytes, the bridging gap, B's first-element gap
    // re-encoded, B's remaining bytes... B's encoding after its first
    // element is position-independent, so only the A.Last -> B.First gap
    // is new.
    size_t Gap = Codec::template gapBytes<K>(A->Last, B->First);
    size_t Bytes = size_t(A->Bytes) + Gap + B->Bytes;
    ChunkPayload<K> *C =
        detail::allocChunk(A->First, B->Last, A->Count + B->Count, Bytes);
    uint8_t *Out = C->data();
    std::memcpy(Out, A->data(), A->Bytes);
    Out += A->Bytes;
    Out = Codec::template encodeGap<K>(A->Last, B->First, Out);
    std::memcpy(Out, B->data(), B->Bytes);
    return C;
  }
  using Cur = typename Codec::template Cursor<K>;
  size_t MaxCount = size_t(A->Count) + B->Count;
  CtxArray<uint8_t> Buf(MaxCount * Codec::template maxGapBytes<K>());
  detail::RunEmitter<Codec, K> Em(Buf.data());
  Cur CA(A), CB(B);
  // Adaptive run tracking: if the first stretch of output shows the
  // inputs are element-interleaved (average run barely above 1), the
  // per-run bookkeeping cannot pay for itself - finish the overlap with
  // a plain streaming merge. Long drains below still move bytes.
  uint32_t RunStarts = 0;
  bool Probing = true;
  while (!CA.done() && !CB.done()) {
    if (Probing && Em.count() >= 64) {
      Probing = false;
      if (uint64_t(RunStarts) * 2 > uint64_t(Em.count())) {
        while (!CA.done() && !CB.done()) {
          K VA = CA.value(), VB = CB.value();
          if (VA < VB) {
            Em.emit(VA);
            CA.advance();
          } else if (VB < VA) {
            Em.emit(VB);
            CB.advance();
          } else {
            Em.emit(VA);
            CA.advance();
            CB.advance();
          }
        }
        break;
      }
    }
    K VA = CA.value(), VB = CB.value();
    if (VA == VB) {
      Em.emit(VA);
      CA.advance();
      CB.advance();
    } else if (VA < VB) {
      ++RunStarts;
      detail::copyRunBelow(Em, CA, A, VB);
    } else {
      ++RunStarts;
      detail::copyRunBelow(Em, CB, B, VA);
    }
  }
  if (!CA.done())
    detail::drainRun(Em, CA, A);
  if (!CB.done())
    detail::drainRun(Em, CB, B);
  return detail::finishRunCopy(Em, Buf.data());
}

/// Union of chunk \p A with the sorted, duplicate-free span \p B. Runs of
/// consecutive A elements are byte-copied; span elements (no encoding to
/// reuse) are encoded as they interleave.
template <class Codec, class K>
ChunkPayload<K> *unionChunkSpan(const ChunkPayload<K> *A, const K *B,
                                size_t NB) {
  if (NB == 0) {
    auto *R = const_cast<ChunkPayload<K> *>(A);
    retainChunk(R);
    return R;
  }
  if (!A)
    return makeChunk<Codec>(B, NB);
  using Cur = typename Codec::template Cursor<K>;
  CtxArray<uint8_t> Buf((A->Count + NB) * Codec::template maxGapBytes<K>());
  detail::RunEmitter<Codec, K> Em(Buf.data());
  Cur CA(A);
  SpanCursor<K> CB(B, NB);
  // Same adaptive probe as unionChunks: when batch elements interleave
  // the chunk element-wise, run tracking cannot pay for itself.
  uint32_t RunStarts = 0;
  bool Probing = true;
  while (!CA.done() && !CB.done()) {
    if (Probing && Em.count() >= 64) {
      Probing = false;
      if (uint64_t(RunStarts) * 2 > uint64_t(Em.count())) {
        while (!CA.done() && !CB.done()) {
          K VA = CA.value(), VB = CB.value();
          if (VA < VB) {
            Em.emit(VA);
            CA.advance();
          } else if (VB < VA) {
            Em.emit(VB);
            CB.advance();
          } else {
            Em.emit(VA);
            CA.advance();
            CB.advance();
          }
        }
        break;
      }
    }
    K VA = CA.value(), VB = CB.value();
    if (VA == VB) {
      Em.emit(VA);
      CA.advance();
      CB.advance();
    } else if (VA < VB) {
      ++RunStarts;
      detail::copyRunBelow(Em, CA, A, VB);
    } else {
      Em.emit(VB);
      CB.advance();
    }
  }
  if (!CA.done())
    detail::drainRun(Em, CA, A);
  for (; !CB.done(); CB.advance())
    Em.emit(CB.value());
  return detail::finishRunCopy(Em, Buf.data());
}

namespace detail {

/// Shared run-copy body of the two chunkMinus flavors: \p B is any
/// cursor-concept reader over the subtrahend (span or chunk).
template <class Codec, class K, class CB>
ChunkPayload<K> *chunkMinusRunCopy(const ChunkPayload<K> *A, CB B) {
  using Cur = typename Codec::template Cursor<K>;
  CtxArray<uint8_t> Buf(size_t(A->Count) *
                        Codec::template maxGapBytes<K>());
  RunEmitter<Codec, K> Em(Buf.data());
  Cur CA(A);
  // Same adaptive probe as unionChunks: bail to a plain streaming loop
  // when the kept stretches turn out to be single elements.
  uint32_t RunStarts = 0;
  bool Probing = true;
  while (!CA.done()) {
    if (B.done()) {
      drainRun(Em, CA, A);
      break;
    }
    if (Probing && Em.count() >= 64) {
      Probing = false;
      if (uint64_t(RunStarts) * 2 > uint64_t(Em.count())) {
        while (!CA.done() && !B.done()) {
          K VA = CA.value(), VB = B.value();
          if (VA > VB) {
            B.advance();
          } else if (VA == VB) {
            CA.advance();
            B.advance();
          } else {
            Em.emit(VA);
            CA.advance();
          }
        }
        continue; // back to the outer loop for the B-exhausted drain
      }
    }
    K VA = CA.value(), VB = B.value();
    if (VA > VB) {
      B.advance();
    } else if (VA == VB) {
      CA.advance();
      B.advance();
    } else {
      // The kept stretch below the next subtrahend hit.
      ++RunStarts;
      copyRunBelow(Em, CA, A, VB);
    }
  }
  return finishRunCopy(Em, Buf.data());
}

/// Shared run-copy body of chunkIntersect: consecutive matches are
/// contiguous in A's encoding, so each match run after its first element
/// is one memcpy.
template <class Codec, class K, class CB>
ChunkPayload<K> *chunkIntersectRunCopy(const ChunkPayload<K> *A, CB B,
                                       size_t MaxCount) {
  using Cur = typename Codec::template Cursor<K>;
  CtxArray<uint8_t> Buf(MaxCount * Codec::template maxGapBytes<K>());
  RunEmitter<Codec, K> Em(Buf.data());
  Cur CA(A);
  // Same adaptive probe as unionChunks: single-element match runs cannot
  // pay for their bookkeeping.
  uint32_t RunStarts = 0;
  bool Probing = true;
  while (!CA.done() && !B.done()) {
    if (Probing && Em.count() >= 64) {
      Probing = false;
      if (uint64_t(RunStarts) * 2 > uint64_t(Em.count())) {
        while (!CA.done() && !B.done()) {
          K VA = CA.value(), VB = B.value();
          if (VA < VB) {
            CA.advance();
          } else if (VB < VA) {
            B.advance();
          } else {
            Em.emit(VA);
            CA.advance();
            B.advance();
          }
        }
        break;
      }
    }
    K VA = CA.value(), VB = B.value();
    if (VA < VB) {
      CA.advance();
    } else if (VB < VA) {
      B.advance();
    } else {
      // A match run: consecutive matches are contiguous in A's encoding.
      ++RunStarts;
      Em.emit(VA);
      size_t Start = CA.byteOffset();
      size_t End = Start;
      K LastV = VA;
      uint32_t Extra = 0;
      CA.advance();
      B.advance();
      while (!CA.done() && !B.done() && CA.value() == B.value()) {
        LastV = CA.value();
        End = CA.byteOffset();
        ++Extra;
        CA.advance();
        B.advance();
      }
      if (Extra)
        Em.copyRun(A->data() + Start, End - Start, Extra, LastV);
    }
  }
  return finishRunCopy(Em, Buf.data());
}

} // namespace detail

/// Elements of \p A not in the sorted span \p Sub. Kept stretches between
/// subtrahend hits are byte-copied.
template <class Codec, class K>
ChunkPayload<K> *chunkMinus(const ChunkPayload<K> *A, const K *Sub,
                            size_t NSub) {
  if (!A)
    return nullptr;
  if (NSub == 0 || Sub[NSub - 1] < A->First || Sub[0] > A->Last) {
    auto *R = const_cast<ChunkPayload<K> *>(A);
    retainChunk(R);
    return R;
  }
  return detail::chunkMinusRunCopy<Codec, K>(A, SpanCursor<K>(Sub, NSub));
}

template <class Codec, class K>
ChunkPayload<K> *chunkMinus(const ChunkPayload<K> *A,
                            const std::vector<K> &Sub) {
  return chunkMinus<Codec>(A, Sub.data(), Sub.size());
}

/// Elements of \p A not in chunk \p Sub; both sides stream.
template <class Codec, class K>
ChunkPayload<K> *chunkMinusChunk(const ChunkPayload<K> *A,
                                 const ChunkPayload<K> *Sub) {
  if (!A)
    return nullptr;
  if (!Sub || Sub->Last < A->First || Sub->First > A->Last) {
    auto *R = const_cast<ChunkPayload<K> *>(A);
    retainChunk(R);
    return R;
  }
  return detail::chunkMinusRunCopy<Codec, K>(
      A, typename Codec::template Cursor<K>(Sub));
}

/// Elements of \p A also present in the sorted span \p Keep.
template <class Codec, class K>
ChunkPayload<K> *chunkIntersect(const ChunkPayload<K> *A, const K *Keep,
                                size_t NKeep) {
  if (!A || NKeep == 0 || Keep[NKeep - 1] < A->First ||
      Keep[0] > A->Last)
    return nullptr;
  return detail::chunkIntersectRunCopy<Codec, K>(
      A, SpanCursor<K>(Keep, NKeep),
      A->Count < NKeep ? A->Count : size_t(NKeep));
}

template <class Codec, class K>
ChunkPayload<K> *chunkIntersect(const ChunkPayload<K> *A,
                                const std::vector<K> &Keep) {
  return chunkIntersect<Codec>(A, Keep.data(), Keep.size());
}

struct ChunkSplit {
  void *Left = nullptr;  ///< ChunkPayload<K>* of elements < key
  void *Right = nullptr; ///< ChunkPayload<K>* of elements > key
  bool Found = false;    ///< Key was present (excluded from both sides)
};

/// Split \p C around \p Key into (elements < Key, found, elements > Key).
/// A lower-bound seek (binary search for raw chunks, byte-offset-tracking
/// scan for delta chunks) locates the boundary; both halves are then
/// byte slices of the original encoding - no re-encoding.
template <class Codec, class K>
ChunkSplit splitChunk(const ChunkPayload<K> *C, K Key) {
  ChunkSplit S;
  if (!C)
    return S;
  if (Key < C->First) {
    retainChunk(const_cast<ChunkPayload<K> *>(C));
    S.Right = const_cast<ChunkPayload<K> *>(C);
    return S;
  }
  if (Key > C->Last) {
    retainChunk(const_cast<ChunkPayload<K> *>(C));
    S.Left = const_cast<ChunkPayload<K> *>(C);
    return S;
  }
  typename Codec::template Cursor<K> Cu(C);
  Cu.seekLowerBound(Key);
  uint32_t LoCount = C->Count - Cu.remaining(); // elements strictly < Key
  S.Found = !Cu.done() && Cu.value() == Key;
  if (LoCount > 0)
    S.Left = detail::sliceChunk(C->First, Cu.prevValue(), LoCount,
                                C->data(), Cu.prevByteOffset());
  if (S.Found)
    Cu.advance();
  if (!Cu.done()) {
    size_t Off = Cu.byteOffset();
    S.Right = detail::sliceChunk(Cu.value(), C->Last, Cu.remaining(),
                                 C->data() + Off, C->Bytes - Off);
  }
  return S;
}

/// RAII reference to a chunk payload; the C-tree's node value type.
template <class K> class ChunkRef {
public:
  ChunkRef() = default;
  /// Adopts one reference on \p C.
  explicit ChunkRef(ChunkPayload<K> *C) : C(C) {}

  ChunkRef(const ChunkRef &O) : C(O.C) { retainChunk(C); }
  ChunkRef(ChunkRef &&O) noexcept : C(O.C) { O.C = nullptr; }
  ChunkRef &operator=(const ChunkRef &O) {
    if (this != &O) {
      retainChunk(O.C);
      releaseChunk(C);
      C = O.C;
    }
    return *this;
  }
  ChunkRef &operator=(ChunkRef &&O) noexcept {
    if (this != &O) {
      releaseChunk(C);
      C = O.C;
      O.C = nullptr;
    }
    return *this;
  }
  ~ChunkRef() { releaseChunk(C); }

  ChunkPayload<K> *get() const { return C; }
  ChunkPayload<K> *take() {
    ChunkPayload<K> *R = C;
    C = nullptr;
    return R;
  }
  uint32_t count() const { return chunkCount(C); }

private:
  ChunkPayload<K> *C = nullptr;
};

//===----------------------------------------------------------------------===
// Hot-vertex hash sidecars. An EdgeSidecar is an immutable open-addressing
// hash over a high-degree adjacency set, giving O(1) containsEdge probes
// where a delta-chunk membership test costs an O(b) decode scan. Like
// chunks, sidecars are refcounted and shared structurally across versions:
// a functional update that leaves a hot vertex untouched shares the old
// sidecar by reference; an update that changes the set rebuilds it (the
// set algebra knows the post-merge degree, so rebuild happens exactly when
// the adjacency changed). Linear probing at load factor <= 1/2; the all-
// ones key is reserved as the empty-slot sentinel (it is NoVertex for
// VertexId keys, which no edge targets).
//===----------------------------------------------------------------------===

template <class K> struct EdgeSidecar {
  std::atomic<uint32_t> Ref; ///< shared across versions like chunks
  uint32_t SlotMask;         ///< Slots - 1; slot count is a power of two
  uint32_t Count;            ///< live keys (diagnostics/invariants)

  static constexpr K EmptySlot = K(~K(0));

  K *slots() { return reinterpret_cast<K *>(this + 1); }
  const K *slots() const { return reinterpret_cast<const K *>(this + 1); }

  static size_t totalBytes(uint32_t NumSlots) {
    return sizeof(EdgeSidecar<K>) + size_t(NumSlots) * sizeof(K);
  }
};

template <class K> void retainSidecar(EdgeSidecar<K> *S) {
  if (S)
    S->Ref.fetch_add(1, std::memory_order_relaxed);
}

template <class K> void releaseSidecar(EdgeSidecar<K> *S) {
  if (!S)
    return;
  if (S->Ref.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    size_t Total = EdgeSidecar<K>::totalBytes(S->SlotMask + 1);
    S->~EdgeSidecar<K>();
    countedFree(S, Total);
  }
}

template <class K> size_t sidecarBytes(const EdgeSidecar<K> *S) {
  return S ? EdgeSidecar<K>::totalBytes(S->SlotMask + 1) : 0;
}

/// O(1) expected membership probe.
template <class K> bool sidecarContains(const EdgeSidecar<K> *S, K X) {
  if (!S || X == EdgeSidecar<K>::EmptySlot)
    return false;
  const K *Slots = S->slots();
  uint32_t Mask = S->SlotMask;
  for (uint32_t I = uint32_t(hash64(uint64_t(X))) & Mask;;
       I = (I + 1) & Mask) {
    K V = Slots[I];
    if (V == X)
      return true;
    if (V == EdgeSidecar<K>::EmptySlot)
      return false;
  }
}

/// Build a sidecar over \p N elements produced by \p ForEach (any order,
/// duplicate-free), with one reference owned by the caller. Returns
/// nullptr when N == 0 or when the element stream contains the reserved
/// sentinel key (callers then fall back to the chunk-scan probe).
template <class K, class ForEach>
EdgeSidecar<K> *buildSidecar(size_t N, const ForEach &Fn) {
  if (N == 0)
    return nullptr;
  // Smallest power of two giving load factor <= 1/2.
  uint32_t NumSlots = 2;
  while (NumSlots < 2 * N)
    NumSlots *= 2;
  void *Mem = countedAlloc(EdgeSidecar<K>::totalBytes(NumSlots));
  auto *S = new (Mem) EdgeSidecar<K>();
  S->Ref.store(1, std::memory_order_relaxed);
  S->SlotMask = NumSlots - 1;
  S->Count = static_cast<uint32_t>(N);
  K *Slots = S->slots();
  std::fill(Slots, Slots + NumSlots, EdgeSidecar<K>::EmptySlot);
  bool SawSentinel = false;
  Fn([&](K V) {
    if (V == EdgeSidecar<K>::EmptySlot) {
      SawSentinel = true;
      return;
    }
    uint32_t I = uint32_t(hash64(uint64_t(V))) & S->SlotMask;
    while (Slots[I] != EdgeSidecar<K>::EmptySlot)
      I = (I + 1) & S->SlotMask;
    Slots[I] = V;
  });
  if (SawSentinel) {
    releaseSidecar(S);
    return nullptr;
  }
  return S;
}

/// Build a sidecar directly from a sorted span.
template <class K>
EdgeSidecar<K> *makeSidecar(const K *E, size_t N) {
  return buildSidecar<K>(N, [&](auto Sink) {
    for (size_t I = 0; I < N; ++I)
      Sink(E[I]);
  });
}

} // namespace aspen

#endif // ASPEN_CTREE_CHUNK_H
