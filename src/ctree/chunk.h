//===- ctree/chunk.h - Compressed element chunks ---------------------------===//
//
// Chunks are the tails/prefixes of the C-tree (Section 3.1): immutable,
// reference-counted arrays of sorted elements. The header stores the first
// and last elements so Split does O(1) work per node visited (Section 4.1),
// and the element count so C-tree sizes are O(1) via augmentation.
//
// Two codecs (Section 3.2):
//  * DeltaByteCodec - difference encoding + variable-length byte codes
//    ("Aspen (DE)" in Table 2).
//  * RawCodec       - plain element array ("Aspen (No DE)").
//
// Chunks are immutable after construction, so sharing them between tree
// versions is a reference-count bump; all "modifications" build new chunks.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_CTREE_CHUNK_H
#define ASPEN_CTREE_CHUNK_H

#include "encoding/byte_code.h"
#include "memory/pool_allocator.h"

#include <atomic>
#include <cassert>
#include <cstring>
#include <vector>

namespace aspen {

/// Header of a chunk payload; the encoded elements follow contiguously.
template <class K> struct ChunkPayload {
  std::atomic<uint32_t> Ref;
  uint32_t Count; ///< Number of elements (>= 1).
  uint32_t Bytes; ///< Encoded size of elements after the first.
  K First;        ///< Smallest element; base of difference encoding.
  K Last;         ///< Largest element (O(1) Split checks).

  uint8_t *data() { return reinterpret_cast<uint8_t *>(this + 1); }
  const uint8_t *data() const {
    return reinterpret_cast<const uint8_t *>(this + 1);
  }
};

/// Difference coding with byte codes: element i>0 is stored as the varint
/// of E[i] - E[i-1] (strictly increasing, so deltas >= 1).
struct DeltaByteCodec {
  static constexpr const char *Name = "delta-byte";

  template <class K> static size_t encodedBytes(const K *E, size_t N) {
    size_t Bytes = 0;
    for (size_t I = 1; I < N; ++I)
      Bytes += varintSize(static_cast<uint64_t>(E[I]) -
                          static_cast<uint64_t>(E[I - 1]));
    return Bytes;
  }

  template <class K>
  static void encode(const K *E, size_t N, uint8_t *Out) {
    for (size_t I = 1; I < N; ++I)
      Out = encodeVarint(static_cast<uint64_t>(E[I]) -
                             static_cast<uint64_t>(E[I - 1]),
                         Out);
  }

  /// Invoke Fn on each element in order; Fn returns false to stop early.
  /// Returns false iff stopped early.
  template <class K, class F>
  static bool iterate(const ChunkPayload<K> *C, const F &Fn) {
    K Cur = C->First;
    if (!Fn(Cur))
      return false;
    const uint8_t *In = C->data();
    for (uint32_t I = 1; I < C->Count; ++I) {
      uint64_t Delta;
      In = decodeVarint(In, Delta);
      Cur = static_cast<K>(static_cast<uint64_t>(Cur) + Delta);
      if (!Fn(Cur))
        return false;
    }
    return true;
  }
};

/// No compression: elements after the first stored as raw K values.
struct RawCodec {
  static constexpr const char *Name = "raw";

  template <class K> static size_t encodedBytes(const K *, size_t N) {
    return N > 1 ? (N - 1) * sizeof(K) : 0;
  }

  template <class K>
  static void encode(const K *E, size_t N, uint8_t *Out) {
    if (N > 1)
      std::memcpy(Out, E + 1, (N - 1) * sizeof(K));
  }

  template <class K, class F>
  static bool iterate(const ChunkPayload<K> *C, const F &Fn) {
    if (!Fn(C->First))
      return false;
    const uint8_t *In = C->data();
    for (uint32_t I = 1; I < C->Count; ++I) {
      K V;
      std::memcpy(&V, In + (I - 1) * sizeof(K), sizeof(K));
      if (!Fn(V))
        return false;
    }
    return true;
  }
};

//===----------------------------------------------------------------------===
// Chunk operations. All functions hand back payloads with one reference
// owned by the caller; nullptr represents the empty chunk.
//===----------------------------------------------------------------------===

template <class K> void retainChunk(ChunkPayload<K> *C) {
  if (C)
    C->Ref.fetch_add(1, std::memory_order_relaxed);
}

template <class K> void releaseChunk(ChunkPayload<K> *C) {
  if (!C)
    return;
  if (C->Ref.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    size_t Total = sizeof(ChunkPayload<K>) + C->Bytes;
    C->~ChunkPayload<K>();
    countedFree(C, Total);
  }
}

/// Build a chunk from \p N sorted, duplicate-free elements (nullptr if
/// N == 0).
template <class Codec, class K>
ChunkPayload<K> *makeChunk(const K *E, size_t N) {
  if (N == 0)
    return nullptr;
  size_t Bytes = Codec::template encodedBytes<K>(E, N);
  void *Mem = countedAlloc(sizeof(ChunkPayload<K>) + Bytes);
  auto *C = new (Mem) ChunkPayload<K>();
  C->Ref.store(1, std::memory_order_relaxed);
  C->Count = static_cast<uint32_t>(N);
  C->Bytes = static_cast<uint32_t>(Bytes);
  C->First = E[0];
  C->Last = E[N - 1];
  Codec::template encode<K>(E, N, C->data());
  return C;
}

template <class K> uint32_t chunkCount(const ChunkPayload<K> *C) {
  return C ? C->Count : 0;
}

template <class K> size_t chunkBytes(const ChunkPayload<K> *C) {
  return C ? sizeof(ChunkPayload<K>) + C->Bytes : 0;
}

/// Append the chunk's elements to \p Out.
template <class Codec, class K>
void decodeChunk(const ChunkPayload<K> *C, std::vector<K> &Out) {
  if (!C)
    return;
  Out.reserve(Out.size() + C->Count);
  Codec::template iterate<K>(C, [&](K V) {
    Out.push_back(V);
    return true;
  });
}

/// Membership test; O(count) sequential scan with early exit (chunks are
/// O(b log n) w.h.p., Section 4.2).
template <class Codec, class K>
bool chunkContains(const ChunkPayload<K> *C, K X) {
  if (!C || X < C->First || X > C->Last)
    return false;
  bool Found = false;
  Codec::template iterate<K>(C, [&](K V) {
    if (V >= X) {
      Found = (V == X);
      return false;
    }
    return true;
  });
  return Found;
}

/// Merge two sorted chunks, removing duplicates.
template <class Codec, class K>
ChunkPayload<K> *unionChunks(const ChunkPayload<K> *A,
                             const ChunkPayload<K> *B) {
  if (!A) {
    auto *R = const_cast<ChunkPayload<K> *>(B);
    retainChunk(R);
    return R;
  }
  if (!B) {
    auto *R = const_cast<ChunkPayload<K> *>(A);
    retainChunk(R);
    return R;
  }
  std::vector<K> EA, EB;
  decodeChunk<Codec>(A, EA);
  decodeChunk<Codec>(B, EB);
  std::vector<K> Out;
  Out.reserve(EA.size() + EB.size());
  size_t I = 0, J = 0;
  while (I < EA.size() && J < EB.size()) {
    if (EA[I] < EB[J])
      Out.push_back(EA[I++]);
    else if (EB[J] < EA[I])
      Out.push_back(EB[J++]);
    else {
      Out.push_back(EA[I]);
      ++I;
      ++J;
    }
  }
  Out.insert(Out.end(), EA.begin() + I, EA.end());
  Out.insert(Out.end(), EB.begin() + J, EB.end());
  return makeChunk<Codec>(Out.data(), Out.size());
}

/// Elements of \p A not in the sorted vector \p Sub.
template <class Codec, class K>
ChunkPayload<K> *chunkMinus(const ChunkPayload<K> *A,
                            const std::vector<K> &Sub) {
  if (!A)
    return nullptr;
  std::vector<K> EA;
  decodeChunk<Codec>(A, EA);
  std::vector<K> Out;
  Out.reserve(EA.size());
  size_t J = 0;
  for (K V : EA) {
    while (J < Sub.size() && Sub[J] < V)
      ++J;
    if (J < Sub.size() && Sub[J] == V)
      continue;
    Out.push_back(V);
  }
  return makeChunk<Codec>(Out.data(), Out.size());
}

/// Elements of \p A also present in the sorted vector \p Keep.
template <class Codec, class K>
ChunkPayload<K> *chunkIntersect(const ChunkPayload<K> *A,
                                const std::vector<K> &Keep) {
  if (!A)
    return nullptr;
  std::vector<K> EA;
  decodeChunk<Codec>(A, EA);
  std::vector<K> Out;
  size_t J = 0;
  for (K V : EA) {
    while (J < Keep.size() && Keep[J] < V)
      ++J;
    if (J < Keep.size() && Keep[J] == V)
      Out.push_back(V);
  }
  return makeChunk<Codec>(Out.data(), Out.size());
}

struct ChunkSplit {
  void *Left = nullptr;  ///< ChunkPayload<K>* of elements < key
  void *Right = nullptr; ///< ChunkPayload<K>* of elements > key
  bool Found = false;    ///< Key was present (excluded from both sides)
};

/// Split \p C around \p Key into (elements < Key, found, elements > Key).
template <class Codec, class K>
ChunkSplit splitChunk(const ChunkPayload<K> *C, K Key) {
  ChunkSplit S;
  if (!C)
    return S;
  if (Key < C->First) {
    retainChunk(const_cast<ChunkPayload<K> *>(C));
    S.Right = const_cast<ChunkPayload<K> *>(C);
    return S;
  }
  if (Key > C->Last) {
    retainChunk(const_cast<ChunkPayload<K> *>(C));
    S.Left = const_cast<ChunkPayload<K> *>(C);
    return S;
  }
  std::vector<K> E;
  decodeChunk<Codec>(C, E);
  size_t Lo = 0;
  while (Lo < E.size() && E[Lo] < Key)
    ++Lo;
  size_t Hi = Lo;
  if (Hi < E.size() && E[Hi] == Key) {
    S.Found = true;
    ++Hi;
  }
  S.Left = makeChunk<Codec>(E.data(), Lo);
  S.Right = makeChunk<Codec>(E.data() + Hi, E.size() - Hi);
  return S;
}

/// RAII reference to a chunk payload; the C-tree's node value type.
template <class K> class ChunkRef {
public:
  ChunkRef() = default;
  /// Adopts one reference on \p C.
  explicit ChunkRef(ChunkPayload<K> *C) : C(C) {}

  ChunkRef(const ChunkRef &O) : C(O.C) { retainChunk(C); }
  ChunkRef(ChunkRef &&O) noexcept : C(O.C) { O.C = nullptr; }
  ChunkRef &operator=(const ChunkRef &O) {
    if (this != &O) {
      retainChunk(O.C);
      releaseChunk(C);
      C = O.C;
    }
    return *this;
  }
  ChunkRef &operator=(ChunkRef &&O) noexcept {
    if (this != &O) {
      releaseChunk(C);
      C = O.C;
      O.C = nullptr;
    }
    return *this;
  }
  ~ChunkRef() { releaseChunk(C); }

  ChunkPayload<K> *get() const { return C; }
  ChunkPayload<K> *take() {
    ChunkPayload<K> *R = C;
    C = nullptr;
    return R;
  }
  uint32_t count() const { return chunkCount(C); }

private:
  ChunkPayload<K> *C = nullptr;
};

} // namespace aspen

#endif // ASPEN_CTREE_CHUNK_H
