//===- ctree/chunk.h - Compressed element chunks ---------------------------===//
//
// Chunks are the tails/prefixes of the C-tree (Section 3.1): immutable,
// reference-counted arrays of sorted elements. The header stores the first
// and last elements so Split does O(1) work per node visited (Section 4.1),
// and the element count so C-tree sizes are O(1) via augmentation.
//
// Two codecs (Section 3.2):
//  * DeltaByteCodec - difference encoding + variable-length byte codes
//    ("Aspen (DE)" in Table 2).
//  * RawCodec       - plain element array ("Aspen (No DE)").
//
// Every codec exposes a streaming Cursor (done/value/advance, plus
// lower-bound seeking with byte-offset tracking), and all set operations
// below are one-pass cursor merges: elements stream from the input
// cursors through a bounded single-pass encoder into per-thread scratch
// (capacity known from the input counts), then one memcpy lands them in
// the exactly-sized payload. No operation materializes a decoded element
// array; the only allocation on any hot path is the output payload
// itself. Split goes further and byte-slices the encoded stream: a
// chunk's encoding after element i is independent of elements before i,
// so both halves are header fix-ups plus a memcpy.
//
// Chunks are immutable after construction, so sharing them between tree
// versions is a reference-count bump; all "modifications" build new chunks.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_CTREE_CHUNK_H
#define ASPEN_CTREE_CHUNK_H

#include "encoding/byte_code.h"
#include "memory/pool_allocator.h"

#include <atomic>
#include <cassert>
#include <cstring>
#include <vector>

namespace aspen {

/// Header of a chunk payload; the encoded elements follow contiguously.
template <class K> struct ChunkPayload {
  std::atomic<uint32_t> Ref;
  uint32_t Count; ///< Number of elements (>= 1).
  uint32_t Bytes; ///< Encoded size of elements after the first.
  K First;        ///< Smallest element; base of difference encoding.
  K Last;         ///< Largest element (O(1) Split checks).

  uint8_t *data() { return reinterpret_cast<uint8_t *>(this + 1); }
  const uint8_t *data() const {
    return reinterpret_cast<const uint8_t *>(this + 1);
  }
};

/// Difference coding with byte codes: element i>0 is stored as the varint
/// of E[i] - E[i-1] (strictly increasing, so deltas >= 1).
struct DeltaByteCodec {
  static constexpr const char *Name = "delta-byte";

  /// Encoded size of the gap between consecutive elements.
  template <class K> static size_t gapBytes(K Prev, K Next) {
    return varintSize(static_cast<uint64_t>(Next) -
                      static_cast<uint64_t>(Prev));
  }

  /// Upper bound on gapBytes for any pair of K values.
  template <class K> static constexpr size_t maxGapBytes() {
    return (sizeof(K) * 8 + 6) / 7;
  }

  /// Append the encoding of the gap Prev -> Next at \p Out; returns the
  /// byte past it.
  template <class K>
  static uint8_t *encodeGap(K Prev, K Next, uint8_t *Out) {
    return encodeVarint(static_cast<uint64_t>(Next) -
                            static_cast<uint64_t>(Prev),
                        Out);
  }

  template <class K> static size_t encodedBytes(const K *E, size_t N) {
    size_t Bytes = 0;
    for (size_t I = 1; I < N; ++I)
      Bytes += gapBytes(E[I - 1], E[I]);
    return Bytes;
  }

  template <class K>
  static void encode(const K *E, size_t N, uint8_t *Out, size_t Cap) {
    VarintWriter W(Out, Cap);
    for (size_t I = 1; I < N; ++I)
      W.append(static_cast<uint64_t>(E[I]) - static_cast<uint64_t>(E[I - 1]));
  }

  /// Streaming reader over one chunk's elements.
  template <class K> class Cursor {
  public:
    Cursor() = default;
    explicit Cursor(const ChunkPayload<K> *C) {
      if (!C)
        return;
      Cur = C->First;
      Begin = C->data();
      Rest = VarintCursor(Begin, C->Count - 1);
      Left = C->Count;
    }

    bool done() const { return Left == 0; }
    uint32_t remaining() const { return Left; }
    K value() const {
      assert(Left > 0 && "value() on exhausted cursor");
      return Cur;
    }

    void advance() {
      assert(Left > 0 && "advance() on exhausted cursor");
      --Left;
      if (Left)
        Cur = static_cast<K>(static_cast<uint64_t>(Cur) + Rest.next());
    }

    /// Bytes of encoded elements consumed so far: the encodings of
    /// elements [1 .. index] (element 0 lives in the header).
    size_t byteOffset() const {
      return static_cast<size_t>(Rest.pos() - Begin);
    }

    /// Advance to the first element >= Key (or done()). prevValue() /
    /// prevByteOffset() then describe the last element < Key, when the
    /// seek moved past at least one element.
    void seekLowerBound(K Key) {
      while (Left && Cur < Key) {
        Prev = Cur;
        PrevOff = byteOffset();
        advance();
      }
    }

    K prevValue() const { return Prev; }
    size_t prevByteOffset() const { return PrevOff; }

  private:
    K Cur{};
    K Prev{};
    VarintCursor Rest;
    const uint8_t *Begin = nullptr;
    size_t PrevOff = 0;
    uint32_t Left = 0;
  };

  /// Invoke Fn on each element in order; Fn returns false to stop early.
  /// Returns false iff stopped early.
  template <class K, class F>
  static bool iterate(const ChunkPayload<K> *C, const F &Fn) {
    for (Cursor<K> Cu(C); !Cu.done(); Cu.advance())
      if (!Fn(Cu.value()))
        return false;
    return true;
  }
};

/// No compression: elements after the first stored as raw K values.
struct RawCodec {
  static constexpr const char *Name = "raw";

  template <class K> static size_t gapBytes(K, K) { return sizeof(K); }

  template <class K> static constexpr size_t maxGapBytes() {
    return sizeof(K);
  }

  template <class K>
  static uint8_t *encodeGap(K, K Next, uint8_t *Out) {
    std::memcpy(Out, &Next, sizeof(K));
    return Out + sizeof(K);
  }

  template <class K> static size_t encodedBytes(const K *, size_t N) {
    return N > 1 ? (N - 1) * sizeof(K) : 0;
  }

  template <class K>
  static void encode(const K *E, size_t N, uint8_t *Out, size_t) {
    if (N > 1)
      std::memcpy(Out, E + 1, (N - 1) * sizeof(K));
  }

  template <class K> class Cursor {
  public:
    Cursor() = default;
    explicit Cursor(const ChunkPayload<K> *C) {
      if (!C)
        return;
      First = C->First;
      Data = C->data();
      Count = C->Count;
    }

    bool done() const { return Idx == Count; }
    uint32_t remaining() const { return Count - Idx; }
    K value() const {
      assert(Idx < Count && "value() on exhausted cursor");
      return elem(Idx);
    }
    void advance() {
      assert(Idx < Count && "advance() on exhausted cursor");
      ++Idx;
    }

    size_t byteOffset() const { return size_t(Idx) * sizeof(K); }

    /// O(log count): raw chunks support true binary search.
    void seekLowerBound(K Key) {
      if (done() || value() >= Key)
        return;
      // Invariant: elem(Lo) < Key <= elem(Hi) (Hi == Count as sentinel).
      uint32_t Lo = Idx, Hi = Count;
      while (Hi - Lo > 1) {
        uint32_t Mid = Lo + (Hi - Lo) / 2;
        if (elem(Mid) < Key)
          Lo = Mid;
        else
          Hi = Mid;
      }
      Prev = elem(Lo);
      PrevOff = size_t(Lo) * sizeof(K);
      Idx = Hi;
    }

    K prevValue() const { return Prev; }
    size_t prevByteOffset() const { return PrevOff; }

  private:
    K elem(uint32_t I) const {
      if (I == 0)
        return First;
      K V;
      std::memcpy(&V, Data + size_t(I - 1) * sizeof(K), sizeof(K));
      return V;
    }

    K First{};
    K Prev{};
    const uint8_t *Data = nullptr;
    size_t PrevOff = 0;
    uint32_t Idx = 0;
    uint32_t Count = 0;
  };

  template <class K, class F>
  static bool iterate(const ChunkPayload<K> *C, const F &Fn) {
    for (Cursor<K> Cu(C); !Cu.done(); Cu.advance())
      if (!Fn(Cu.value()))
        return false;
    return true;
  }
};

//===----------------------------------------------------------------------===
// Chunk operations. All functions hand back payloads with one reference
// owned by the caller; nullptr represents the empty chunk.
//===----------------------------------------------------------------------===

template <class K> void retainChunk(ChunkPayload<K> *C) {
  if (C)
    C->Ref.fetch_add(1, std::memory_order_relaxed);
}

template <class K> void releaseChunk(ChunkPayload<K> *C) {
  if (!C)
    return;
  if (C->Ref.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    size_t Total = sizeof(ChunkPayload<K>) + C->Bytes;
    C->~ChunkPayload<K>();
    countedFree(C, Total);
  }
}

/// Cursor-concept adapter over a sorted span, matching the codec cursors'
/// done/value/advance/remaining surface so merge bodies are shared between
/// chunk-vs-chunk and chunk-vs-span operations.
template <class K> class SpanCursor {
public:
  SpanCursor() = default;
  SpanCursor(const K *E, size_t N) : E(E), N(N) {}

  bool done() const { return I == N; }
  size_t remaining() const { return N - I; }
  K value() const {
    assert(I < N && "value() on exhausted cursor");
    return E[I];
  }
  void advance() {
    assert(I < N && "advance() on exhausted cursor");
    ++I;
  }

private:
  const K *E = nullptr;
  size_t I = 0;
  size_t N = 0;
};

namespace detail {

/// The three streaming set-merge bodies, over any pair of cursors. Each
/// consumes its cursors (taken by value) and emits a strictly increasing
/// stream into \p Sink.

template <class CA, class CB, class Sink>
void mergeUnion(CA A, CB B, const Sink &S) {
  while (!A.done() && !B.done()) {
    auto VA = A.value(), VB = B.value();
    if (VA < VB) {
      S(VA);
      A.advance();
    } else if (VB < VA) {
      S(VB);
      B.advance();
    } else {
      S(VA);
      A.advance();
      B.advance();
    }
  }
  for (; !A.done(); A.advance())
    S(A.value());
  for (; !B.done(); B.advance())
    S(B.value());
}

/// Elements of A not present in B.
template <class CA, class CB, class Sink>
void mergeMinus(CA A, CB B, const Sink &S) {
  for (; !A.done(); A.advance()) {
    auto V = A.value();
    while (!B.done() && B.value() < V)
      B.advance();
    if (!B.done() && B.value() == V)
      continue;
    S(V);
  }
}

/// Elements of A also present in B.
template <class CA, class CB, class Sink>
void mergeIntersect(CA A, CB B, const Sink &S) {
  for (; !A.done(); A.advance()) {
    auto V = A.value();
    while (!B.done() && B.value() < V)
      B.advance();
    if (!B.done() && B.value() == V)
      S(V);
  }
}

/// Allocate a payload with the given header; the encoded region is left
/// for the caller to fill (exactly \p Bytes bytes).
template <class K>
ChunkPayload<K> *allocChunk(K First, K Last, uint32_t Count, size_t Bytes) {
  void *Mem = countedAlloc(sizeof(ChunkPayload<K>) + Bytes);
  auto *C = new (Mem) ChunkPayload<K>();
  C->Ref.store(1, std::memory_order_relaxed);
  C->Count = Count;
  C->Bytes = static_cast<uint32_t>(Bytes);
  C->First = First;
  C->Last = Last;
  return C;
}

/// Payload whose encoded region is a verbatim copy of \p Src (valid
/// because a chunk's encoding from any element onward is position-
/// independent under both codecs).
template <class K>
ChunkPayload<K> *sliceChunk(K First, K Last, uint32_t Count,
                            const uint8_t *Src, size_t Bytes) {
  ChunkPayload<K> *C = allocChunk(First, Last, Count, Bytes);
  std::memcpy(C->data(), Src, Bytes);
  return C;
}

} // namespace detail

/// Build a chunk from \p N sorted, duplicate-free elements (nullptr if
/// N == 0).
template <class Codec, class K>
ChunkPayload<K> *makeChunk(const K *E, size_t N) {
  if (N == 0)
    return nullptr;
  size_t Bytes = Codec::template encodedBytes<K>(E, N);
  ChunkPayload<K> *C =
      detail::allocChunk(E[0], E[N - 1], static_cast<uint32_t>(N), Bytes);
  Codec::template encode<K>(E, N, C->data(), Bytes);
  return C;
}

/// Build a chunk by running the element generator \p G once, encoding as
/// it goes: a bounded single-pass encode into per-thread scratch (capacity
/// maxGapBytes * MaxCount, an upper bound every set operation knows from
/// its input counts), then one memcpy into the exactly-sized payload.
/// \p G invokes its sink with each output element in strictly increasing
/// order; \p MaxCount must bound the number of elements it emits. Returns
/// nullptr for an empty stream. This is the zero-materialization workhorse
/// behind every chunk set operation: the payload is the only allocation,
/// and only the scratch cache's first warm-up ever touches the heap.
template <class Codec, class K, class Gen>
ChunkPayload<K> *buildChunkStreaming(size_t MaxCount, const Gen &G) {
  if (MaxCount == 0)
    return nullptr;
  size_t CapBytes = MaxCount * Codec::template maxGapBytes<K>();
  size_t Cap;
  auto *Buf = static_cast<uint8_t *>(scratchAcquire(CapBytes, Cap));
  uint8_t *Out = Buf;
  uint32_t N = 0;
  K First{}, Prev{};
  G([&](K V) {
    assert((N == 0 || Prev < V) && "stream must be strictly increasing");
    if (N)
      Out = Codec::template encodeGap<K>(Prev, V, Out);
    else
      First = V;
    Prev = V;
    ++N;
  });
  assert(N <= MaxCount && "generator exceeded its element bound");
  assert(size_t(Out - Buf) <= CapBytes && "encode overran the gap bound");
  ChunkPayload<K> *C = nullptr;
  if (N) {
    size_t Bytes = static_cast<size_t>(Out - Buf);
    C = detail::allocChunk(First, Prev, N, Bytes);
    std::memcpy(C->data(), Buf, Bytes);
  }
  scratchRelease(Buf, Cap);
  return C;
}

template <class K> uint32_t chunkCount(const ChunkPayload<K> *C) {
  return C ? C->Count : 0;
}

template <class K> size_t chunkBytes(const ChunkPayload<K> *C) {
  return C ? sizeof(ChunkPayload<K>) + C->Bytes : 0;
}

/// Append the chunk's elements to \p Out (test/compat helper; hot paths
/// use cursors or decodeChunkTo into scratch).
template <class Codec, class K>
void decodeChunk(const ChunkPayload<K> *C, std::vector<K> &Out) {
  if (!C)
    return;
  Out.reserve(Out.size() + C->Count);
  Codec::template iterate<K>(C, [&](K V) {
    Out.push_back(V);
    return true;
  });
}

/// Decode into a caller-provided buffer of capacity >= chunkCount(C);
/// returns the element count.
template <class Codec, class K>
size_t decodeChunkTo(const ChunkPayload<K> *C, K *Out) {
  size_t N = 0;
  for (typename Codec::template Cursor<K> Cu(C); !Cu.done(); Cu.advance())
    Out[N++] = Cu.value();
  return N;
}

/// Membership test. Header bounds give O(1) answers at both ends (First
/// and Last symmetric); otherwise a lower-bound seek: O(log b) for raw
/// chunks, early-exiting scan for delta chunks.
template <class Codec, class K>
bool chunkContains(const ChunkPayload<K> *C, K X) {
  if (!C || X < C->First || X > C->Last)
    return false;
  if (X == C->First || X == C->Last)
    return true;
  typename Codec::template Cursor<K> Cu(C);
  Cu.seekLowerBound(X);
  return !Cu.done() && Cu.value() == X;
}

/// Merge two sorted chunks, removing duplicates. One pass per side; no
/// decoded intermediates. Disjoint ordered ranges (the common case when a
/// tail meets the next subtree's prefix) degrade to byte concatenation.
template <class Codec, class K>
ChunkPayload<K> *unionChunks(const ChunkPayload<K> *A,
                             const ChunkPayload<K> *B) {
  if (!A) {
    auto *R = const_cast<ChunkPayload<K> *>(B);
    retainChunk(R);
    return R;
  }
  if (!B) {
    auto *R = const_cast<ChunkPayload<K> *>(A);
    retainChunk(R);
    return R;
  }
  if (B->Last < A->First)
    std::swap(A, B);
  if (A->Last < B->First) {
    // Disjoint: A's bytes, the bridging gap, B's first-element gap
    // re-encoded, B's remaining bytes... B's encoding after its first
    // element is position-independent, so only the A.Last -> B.First gap
    // is new.
    size_t Gap = Codec::template gapBytes<K>(A->Last, B->First);
    size_t Bytes = size_t(A->Bytes) + Gap + B->Bytes;
    ChunkPayload<K> *C =
        detail::allocChunk(A->First, B->Last, A->Count + B->Count, Bytes);
    uint8_t *Out = C->data();
    std::memcpy(Out, A->data(), A->Bytes);
    Out += A->Bytes;
    Out = Codec::template encodeGap<K>(A->Last, B->First, Out);
    std::memcpy(Out, B->data(), B->Bytes);
    return C;
  }
  return buildChunkStreaming<Codec, K>(
      size_t(A->Count) + B->Count, [&](auto &&Sink) {
        detail::mergeUnion(typename Codec::template Cursor<K>(A),
                           typename Codec::template Cursor<K>(B), Sink);
      });
}

/// Union of chunk \p A with the sorted, duplicate-free span \p B.
template <class Codec, class K>
ChunkPayload<K> *unionChunkSpan(const ChunkPayload<K> *A, const K *B,
                                size_t NB) {
  if (NB == 0) {
    auto *R = const_cast<ChunkPayload<K> *>(A);
    retainChunk(R);
    return R;
  }
  if (!A)
    return makeChunk<Codec>(B, NB);
  return buildChunkStreaming<Codec, K>(A->Count + NB, [&](auto &&Sink) {
    detail::mergeUnion(typename Codec::template Cursor<K>(A),
                       SpanCursor<K>(B, NB), Sink);
  });
}

/// Elements of \p A not in the sorted span \p Sub.
template <class Codec, class K>
ChunkPayload<K> *chunkMinus(const ChunkPayload<K> *A, const K *Sub,
                            size_t NSub) {
  if (!A)
    return nullptr;
  if (NSub == 0 || Sub[NSub - 1] < A->First || Sub[0] > A->Last) {
    auto *R = const_cast<ChunkPayload<K> *>(A);
    retainChunk(R);
    return R;
  }
  return buildChunkStreaming<Codec, K>(A->Count, [&](auto &&Sink) {
    detail::mergeMinus(typename Codec::template Cursor<K>(A),
                       SpanCursor<K>(Sub, NSub), Sink);
  });
}

template <class Codec, class K>
ChunkPayload<K> *chunkMinus(const ChunkPayload<K> *A,
                            const std::vector<K> &Sub) {
  return chunkMinus<Codec>(A, Sub.data(), Sub.size());
}

/// Elements of \p A not in chunk \p Sub; both sides stream.
template <class Codec, class K>
ChunkPayload<K> *chunkMinusChunk(const ChunkPayload<K> *A,
                                 const ChunkPayload<K> *Sub) {
  if (!A)
    return nullptr;
  if (!Sub || Sub->Last < A->First || Sub->First > A->Last) {
    auto *R = const_cast<ChunkPayload<K> *>(A);
    retainChunk(R);
    return R;
  }
  return buildChunkStreaming<Codec, K>(A->Count, [&](auto &&Sink) {
    detail::mergeMinus(typename Codec::template Cursor<K>(A),
                       typename Codec::template Cursor<K>(Sub), Sink);
  });
}

/// Elements of \p A also present in the sorted span \p Keep.
template <class Codec, class K>
ChunkPayload<K> *chunkIntersect(const ChunkPayload<K> *A, const K *Keep,
                                size_t NKeep) {
  if (!A || NKeep == 0 || Keep[NKeep - 1] < A->First ||
      Keep[0] > A->Last)
    return nullptr;
  return buildChunkStreaming<Codec, K>(
      A->Count < NKeep ? A->Count : uint32_t(NKeep), [&](auto &&Sink) {
        detail::mergeIntersect(typename Codec::template Cursor<K>(A),
                               SpanCursor<K>(Keep, NKeep), Sink);
      });
}

template <class Codec, class K>
ChunkPayload<K> *chunkIntersect(const ChunkPayload<K> *A,
                                const std::vector<K> &Keep) {
  return chunkIntersect<Codec>(A, Keep.data(), Keep.size());
}

struct ChunkSplit {
  void *Left = nullptr;  ///< ChunkPayload<K>* of elements < key
  void *Right = nullptr; ///< ChunkPayload<K>* of elements > key
  bool Found = false;    ///< Key was present (excluded from both sides)
};

/// Split \p C around \p Key into (elements < Key, found, elements > Key).
/// A lower-bound seek (binary search for raw chunks, byte-offset-tracking
/// scan for delta chunks) locates the boundary; both halves are then
/// byte slices of the original encoding - no re-encoding.
template <class Codec, class K>
ChunkSplit splitChunk(const ChunkPayload<K> *C, K Key) {
  ChunkSplit S;
  if (!C)
    return S;
  if (Key < C->First) {
    retainChunk(const_cast<ChunkPayload<K> *>(C));
    S.Right = const_cast<ChunkPayload<K> *>(C);
    return S;
  }
  if (Key > C->Last) {
    retainChunk(const_cast<ChunkPayload<K> *>(C));
    S.Left = const_cast<ChunkPayload<K> *>(C);
    return S;
  }
  typename Codec::template Cursor<K> Cu(C);
  Cu.seekLowerBound(Key);
  uint32_t LoCount = C->Count - Cu.remaining(); // elements strictly < Key
  S.Found = !Cu.done() && Cu.value() == Key;
  if (LoCount > 0)
    S.Left = detail::sliceChunk(C->First, Cu.prevValue(), LoCount,
                                C->data(), Cu.prevByteOffset());
  if (S.Found)
    Cu.advance();
  if (!Cu.done()) {
    size_t Off = Cu.byteOffset();
    S.Right = detail::sliceChunk(Cu.value(), C->Last, Cu.remaining(),
                                 C->data() + Off, C->Bytes - Off);
  }
  return S;
}

/// RAII reference to a chunk payload; the C-tree's node value type.
template <class K> class ChunkRef {
public:
  ChunkRef() = default;
  /// Adopts one reference on \p C.
  explicit ChunkRef(ChunkPayload<K> *C) : C(C) {}

  ChunkRef(const ChunkRef &O) : C(O.C) { retainChunk(C); }
  ChunkRef(ChunkRef &&O) noexcept : C(O.C) { O.C = nullptr; }
  ChunkRef &operator=(const ChunkRef &O) {
    if (this != &O) {
      retainChunk(O.C);
      releaseChunk(C);
      C = O.C;
    }
    return *this;
  }
  ChunkRef &operator=(ChunkRef &&O) noexcept {
    if (this != &O) {
      releaseChunk(C);
      C = O.C;
      O.C = nullptr;
    }
    return *this;
  }
  ~ChunkRef() { releaseChunk(C); }

  ChunkPayload<K> *get() const { return C; }
  ChunkPayload<K> *take() {
    ChunkPayload<K> *R = C;
    C = nullptr;
    return R;
  }
  uint32_t count() const { return chunkCount(C); }

private:
  ChunkPayload<K> *C = nullptr;
};

} // namespace aspen

#endif // ASPEN_CTREE_CHUNK_H
