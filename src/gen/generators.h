//===- gen/generators.h - Synthetic graph generators ----------------------===//
//
// Synthetic workload generators standing in for the paper's datasets
// (DESIGN.md Section 2): the rMAT generator used for the paper's update
// streams (Section 7.4: a=0.5, b=c=0.1, d=0.3), uniform-random (Erdos-
// Renyi style) edges, and small structured graphs for tests. Everything is
// deterministic given a seed, with per-index hashing so generation is
// embarrassingly parallel.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_GEN_GENERATORS_H
#define ASPEN_GEN_GENERATORS_H

#include "parallel/primitives.h"
#include "util/hash.h"
#include "util/types.h"

#include <cmath>
#include <vector>

namespace aspen {

/// rMAT generator with the paper's parameters (a=0.5, b=c=0.1, d=0.3).
/// Produces directed edges over [0, 2^LogN); duplicates are possible, as
/// in the paper's update streams.
class RMatGenerator {
public:
  RMatGenerator(int LogN, uint64_t Seed, double A = 0.5, double B = 0.1,
                double C = 0.1)
      : LogN(LogN), Seed(Seed), A(A), AB(A + B), ABC(A + B + C) {}

  VertexId numVertices() const { return VertexId(1) << LogN; }

  /// The I-th edge of the stream (deterministic in I).
  EdgePair edge(uint64_t I) const {
    uint64_t State = hashAt(Seed, I);
    VertexId Src = 0, Dst = 0;
    for (int Bit = 0; Bit < LogN; ++Bit) {
      // Draw a quadrant; re-mix the state per level.
      State = hash64(State + Bit + 1);
      double P = double(State >> 11) * 0x1.0p-53;
      Src <<= 1;
      Dst <<= 1;
      if (P >= ABC) { // quadrant d
        Src |= 1;
        Dst |= 1;
      } else if (P >= AB) { // quadrant c
        Src |= 1;
      } else if (P >= A) { // quadrant b
        Dst |= 1;
      } // else quadrant a: both 0
    }
    return {Src, Dst};
  }

  /// Edges [Start, Start+Count) of the stream, generated in parallel.
  std::vector<EdgePair> edges(uint64_t Start, uint64_t Count) const {
    return tabulate(Count, [&](size_t I) { return edge(Start + I); });
  }

private:
  int LogN;
  uint64_t Seed;
  double A, AB, ABC;
};

/// \p Count uniform-random directed edges over [0, N) x [0, N).
inline std::vector<EdgePair> uniformRandomEdges(VertexId N, uint64_t Count,
                                                uint64_t Seed) {
  return tabulate(Count, [&](size_t I) {
    uint64_t H = hashAt(Seed, I);
    return EdgePair{VertexId(H % N), VertexId((H >> 32) % N)};
  });
}

/// Add the reverse of every edge (the paper symmetrizes all graphs).
inline std::vector<EdgePair> symmetrize(const std::vector<EdgePair> &E) {
  std::vector<EdgePair> Out(2 * E.size());
  parallelFor(0, E.size(), [&](size_t I) {
    Out[2 * I] = E[I];
    Out[2 * I + 1] = {E[I].second, E[I].first};
  });
  return Out;
}

/// Sort edges by (source, destination) and drop duplicates and self-loops.
inline std::vector<EdgePair> dedupEdges(std::vector<EdgePair> E) {
  parallelSort(E);
  std::vector<EdgePair> Out;
  Out.reserve(E.size());
  for (size_t I = 0; I < E.size(); ++I) {
    if (E[I].first == E[I].second)
      continue;
    if (!Out.empty() && Out.back() == E[I])
      continue;
    Out.push_back(E[I]);
  }
  return Out;
}

/// Undirected path 0-1-2-...-(N-1) as directed edge pairs.
inline std::vector<EdgePair> pathGraph(VertexId N) {
  std::vector<EdgePair> E;
  for (VertexId I = 0; I + 1 < N; ++I) {
    E.push_back({I, I + 1});
    E.push_back({I + 1, I});
  }
  return E;
}

/// Star centered at 0 with N-1 leaves.
inline std::vector<EdgePair> starGraph(VertexId N) {
  std::vector<EdgePair> E;
  for (VertexId I = 1; I < N; ++I) {
    E.push_back({0, I});
    E.push_back({I, 0});
  }
  return E;
}

/// Complete graph on N vertices.
inline std::vector<EdgePair> cliqueGraph(VertexId N) {
  std::vector<EdgePair> E;
  for (VertexId I = 0; I < N; ++I)
    for (VertexId J = 0; J < N; ++J)
      if (I != J)
        E.push_back({I, J});
  return E;
}

/// Rows x Cols grid, 4-neighborhood, symmetric.
inline std::vector<EdgePair> gridGraph(VertexId Rows, VertexId Cols) {
  std::vector<EdgePair> E;
  auto Id = [&](VertexId R, VertexId C) { return R * Cols + C; };
  for (VertexId R = 0; R < Rows; ++R)
    for (VertexId C = 0; C < Cols; ++C) {
      if (C + 1 < Cols) {
        E.push_back({Id(R, C), Id(R, C + 1)});
        E.push_back({Id(R, C + 1), Id(R, C)});
      }
      if (R + 1 < Rows) {
        E.push_back({Id(R, C), Id(R + 1, C)});
        E.push_back({Id(R + 1, C), Id(R, C)});
      }
    }
  return E;
}

/// Standard benchmark input: a symmetrized, deduplicated rMAT graph with
/// 2^LogN vertices and ~EdgeFactor * 2^LogN directed edges (before
/// symmetrization), as used throughout the evaluation.
inline std::vector<EdgePair> rmatGraphEdges(int LogN, uint64_t EdgeFactor,
                                            uint64_t Seed) {
  RMatGenerator Gen(LogN, Seed);
  auto E = Gen.edges(0, EdgeFactor << LogN);
  return dedupEdges(symmetrize(E));
}

} // namespace aspen

#endif // ASPEN_GEN_GENERATORS_H
