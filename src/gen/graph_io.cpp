//===- gen/graph_io.cpp - Graph file input/output --------------------------===//

#include "gen/graph_io.h"

#include "parallel/primitives.h"

#include <cstdio>
#include <cstring>
#include <fstream>

using namespace aspen;

bool aspen::readAdjacencyGraph(const std::string &Path, EdgeList &Out) {
  std::ifstream In(Path);
  if (!In)
    return false;
  std::string Header;
  In >> Header;
  if (Header != "AdjacencyGraph")
    return false;
  uint64_t N = 0, M = 0;
  In >> N >> M;
  if (!In)
    return false;
  std::vector<uint64_t> Offsets(N);
  for (uint64_t I = 0; I < N; ++I)
    In >> Offsets[I];
  std::vector<uint64_t> Targets(M);
  for (uint64_t I = 0; I < M; ++I)
    In >> Targets[I];
  if (!In)
    return false;
  Out.NumVertices = VertexId(N);
  Out.Edges.clear();
  Out.Edges.reserve(M);
  for (uint64_t U = 0; U < N; ++U) {
    uint64_t End = (U + 1 < N) ? Offsets[U + 1] : M;
    for (uint64_t E = Offsets[U]; E < End; ++E)
      Out.Edges.push_back({VertexId(U), VertexId(Targets[E])});
  }
  return true;
}

bool aspen::writeAdjacencyGraph(const std::string &Path, VertexId N,
                                std::vector<EdgePair> Edges) {
  parallelSort(Edges);
  std::ofstream OutF(Path);
  if (!OutF)
    return false;
  OutF << "AdjacencyGraph\n" << N << "\n" << Edges.size() << "\n";
  // Offsets.
  size_t Pos = 0;
  for (VertexId U = 0; U < N; ++U) {
    OutF << Pos << "\n";
    while (Pos < Edges.size() && Edges[Pos].first == U)
      ++Pos;
  }
  for (const EdgePair &E : Edges)
    OutF << E.second << "\n";
  return static_cast<bool>(OutF);
}

bool aspen::readBinaryEdges(const std::string &Path, EdgeList &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  uint64_t N = 0, M = 0;
  In.read(reinterpret_cast<char *>(&N), sizeof(N));
  In.read(reinterpret_cast<char *>(&M), sizeof(M));
  if (!In)
    return false;
  Out.NumVertices = VertexId(N);
  Out.Edges.resize(M);
  static_assert(sizeof(EdgePair) == 8, "expect packed u32 pairs");
  In.read(reinterpret_cast<char *>(Out.Edges.data()),
          std::streamsize(M * sizeof(EdgePair)));
  return static_cast<bool>(In);
}

bool aspen::writeBinaryEdges(const std::string &Path, VertexId N,
                             const std::vector<EdgePair> &Edges) {
  std::ofstream OutF(Path, std::ios::binary);
  if (!OutF)
    return false;
  uint64_t NN = N, M = Edges.size();
  OutF.write(reinterpret_cast<const char *>(&NN), sizeof(NN));
  OutF.write(reinterpret_cast<const char *>(&M), sizeof(M));
  OutF.write(reinterpret_cast<const char *>(Edges.data()),
             std::streamsize(M * sizeof(EdgePair)));
  return static_cast<bool>(OutF);
}
