//===- gen/graph_io.cpp - Graph file input/output --------------------------===//

#include "gen/graph_io.h"

#include "parallel/primitives.h"
#include "util/crc.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

using namespace aspen;

namespace {

bool fail(std::string *Err, std::string Msg) {
  if (Err)
    *Err = std::move(Msg);
  return false;
}

/// Size of an open stream, or -1 on failure. Restores the read position.
int64_t streamSize(std::ifstream &In) {
  std::streampos Cur = In.tellg();
  In.seekg(0, std::ios::end);
  std::streampos End = In.tellg();
  In.seekg(Cur);
  if (!In || End < 0)
    return -1;
  return int64_t(End);
}

constexpr uint64_t MaxVertexCount =
    uint64_t(std::numeric_limits<VertexId>::max()) + 1;

} // namespace

bool aspen::readAdjacencyGraph(const std::string &Path, EdgeList &Out,
                               std::string *Err) {
  std::ifstream In(Path);
  if (!In)
    return fail(Err, Path + ": cannot open file");
  int64_t FileSize = streamSize(In);
  if (FileSize < 0)
    return fail(Err, Path + ": cannot determine file size");
  std::string Header;
  In >> Header;
  if (Header != "AdjacencyGraph")
    return fail(Err, Path + ": missing AdjacencyGraph header");
  uint64_t N = 0, M = 0;
  In >> N >> M;
  if (!In)
    return fail(Err, Path + ": truncated header (expected n and m)");
  if (N > MaxVertexCount)
    return fail(Err, Path + ": vertex count " + std::to_string(N) +
                         " exceeds the 32-bit vertex-id space");
  // Every offset and target occupies at least one digit plus a separator,
  // so a file promising n+m numbers must hold at least that many bytes.
  // This rejects absurd counts before any allocation is attempted.
  if (N + M > uint64_t(FileSize))
    return fail(Err, Path + ": header promises " + std::to_string(N) +
                         " offsets and " + std::to_string(M) +
                         " edges but the file is only " +
                         std::to_string(FileSize) + " bytes");
  if (N == 0 && M > 0)
    return fail(Err, Path + ": " + std::to_string(M) +
                         " edges declared over zero vertices");
  std::vector<uint64_t> Offsets(N);
  for (uint64_t I = 0; I < N; ++I) {
    In >> Offsets[I];
    if (!In)
      return fail(Err, Path + ": truncated offset array (got " +
                           std::to_string(I) + " of " + std::to_string(N) +
                           " offsets)");
    if (Offsets[I] > M)
      return fail(Err, Path + ": offset " + std::to_string(Offsets[I]) +
                           " at index " + std::to_string(I) +
                           " exceeds edge count " + std::to_string(M));
    if (I > 0 && Offsets[I] < Offsets[I - 1])
      return fail(Err, Path + ": offsets are not monotonically " +
                           "non-decreasing at index " + std::to_string(I));
  }
  if (N > 0 && Offsets[0] != 0)
    return fail(Err, Path + ": first offset must be 0, got " +
                         std::to_string(Offsets[0]));
  Out.NumVertices = VertexId(N);
  Out.Edges.clear();
  Out.Edges.reserve(M);
  uint64_t U = 0;
  for (uint64_t I = 0; I < M; ++I) {
    uint64_t T = 0;
    In >> T;
    if (!In)
      return fail(Err, Path + ": truncated edge array (got " +
                           std::to_string(I) + " of " + std::to_string(M) +
                           " targets)");
    if (T >= N)
      return fail(Err, Path + ": target " + std::to_string(T) +
                           " at edge " + std::to_string(I) +
                           " is out of range for n=" + std::to_string(N));
    while (U + 1 < N && Offsets[U + 1] <= I)
      ++U;
    Out.Edges.push_back({VertexId(U), VertexId(T)});
  }
  return true;
}

bool aspen::writeAdjacencyGraph(const std::string &Path, VertexId N,
                                std::vector<EdgePair> Edges) {
  parallelSort(Edges);
  std::ofstream OutF(Path);
  if (!OutF)
    return false;
  OutF << "AdjacencyGraph\n" << N << "\n" << Edges.size() << "\n";
  // Offsets.
  size_t Pos = 0;
  for (VertexId U = 0; U < N; ++U) {
    OutF << Pos << "\n";
    while (Pos < Edges.size() && Edges[Pos].first == U)
      ++Pos;
  }
  for (const EdgePair &E : Edges)
    OutF << E.second << "\n";
  return static_cast<bool>(OutF);
}

static_assert(sizeof(EdgePair) == 8, "expect packed u32 pairs");

bool aspen::readBinaryEdges(const std::string &Path, EdgeList &Out,
                            std::string *Err) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return fail(Err, Path + ": cannot open file");
  int64_t FileSize = streamSize(In);
  if (FileSize < 0)
    return fail(Err, Path + ": cannot determine file size");
  if (uint64_t(FileSize) < 2 * sizeof(uint64_t))
    return fail(Err, Path + ": file too small for a binary edge header (" +
                         std::to_string(FileSize) + " bytes)");
  uint64_t First = 0;
  In.read(reinterpret_cast<char *>(&First), sizeof(First));
  if (!In)
    return fail(Err, Path + ": truncated header");

  uint64_t N = 0, M = 0, HeaderBytes = 0;
  uint32_t Crc = 0;
  bool Checksummed = (First == BinaryEdgesMagic);
  if (Checksummed) {
    // "ASPNEDG1": magic, n, m, crc32c(n|m|payload), pad.
    HeaderBytes = 4 * sizeof(uint64_t);
    uint32_t Pad = 0;
    In.read(reinterpret_cast<char *>(&N), sizeof(N));
    In.read(reinterpret_cast<char *>(&M), sizeof(M));
    In.read(reinterpret_cast<char *>(&Crc), sizeof(Crc));
    In.read(reinterpret_cast<char *>(&Pad), sizeof(Pad));
    if (!In)
      return fail(Err, Path + ": truncated ASPNEDG1 header");
  } else {
    // Legacy headerless format: u64 n, u64 m, pairs.
    HeaderBytes = 2 * sizeof(uint64_t);
    N = First;
    In.read(reinterpret_cast<char *>(&M), sizeof(M));
    if (!In)
      return fail(Err, Path + ": truncated header");
  }
  if (N > MaxVertexCount)
    return fail(Err, Path + ": vertex count " + std::to_string(N) +
                         " exceeds the 32-bit vertex-id space");
  // The payload length is fully determined by m; insist the file matches
  // exactly before allocating, so a corrupt count cannot trigger a huge
  // allocation or a short read into uninitialized memory.
  uint64_t PayloadBytes = uint64_t(FileSize) - HeaderBytes;
  if (PayloadBytes / sizeof(EdgePair) != M ||
      PayloadBytes % sizeof(EdgePair) != 0)
    return fail(Err, Path + ": edge count " + std::to_string(M) +
                         " does not match payload size " +
                         std::to_string(PayloadBytes) + " bytes");
  Out.NumVertices = VertexId(N);
  Out.Edges.resize(M);
  In.read(reinterpret_cast<char *>(Out.Edges.data()),
          std::streamsize(PayloadBytes));
  if (!In)
    return fail(Err, Path + ": truncated edge payload");
  if (Checksummed) {
    uint32_t Want = crc32c(&N, sizeof(N));
    Want = crc32c(&M, sizeof(M), Want);
    Want = crc32c(Out.Edges.data(), PayloadBytes, Want);
    if (Want != Crc)
      return fail(Err, Path + ": checksum mismatch (stored " +
                           std::to_string(Crc) + ", computed " +
                           std::to_string(Want) + ")");
  }
  for (uint64_t I = 0; I < M; ++I) {
    const EdgePair &E = Out.Edges[I];
    if (uint64_t(E.first) >= N || uint64_t(E.second) >= N)
      return fail(Err, Path + ": edge " + std::to_string(I) + " (" +
                           std::to_string(E.first) + ", " +
                           std::to_string(E.second) +
                           ") is out of range for n=" + std::to_string(N));
  }
  return true;
}

bool aspen::writeBinaryEdges(const std::string &Path, VertexId N,
                             const std::vector<EdgePair> &Edges) {
  std::ofstream OutF(Path, std::ios::binary);
  if (!OutF)
    return false;
  uint64_t Magic = BinaryEdgesMagic, NN = N, M = Edges.size();
  uint32_t Crc = crc32c(&NN, sizeof(NN));
  Crc = crc32c(&M, sizeof(M), Crc);
  Crc = crc32c(Edges.data(), M * sizeof(EdgePair), Crc);
  uint32_t Pad = 0;
  OutF.write(reinterpret_cast<const char *>(&Magic), sizeof(Magic));
  OutF.write(reinterpret_cast<const char *>(&NN), sizeof(NN));
  OutF.write(reinterpret_cast<const char *>(&M), sizeof(M));
  OutF.write(reinterpret_cast<const char *>(&Crc), sizeof(Crc));
  OutF.write(reinterpret_cast<const char *>(&Pad), sizeof(Pad));
  OutF.write(reinterpret_cast<const char *>(Edges.data()),
             std::streamsize(M * sizeof(EdgePair)));
  return static_cast<bool>(OutF);
}
