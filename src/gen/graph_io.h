//===- gen/graph_io.h - Graph file input/output ----------------------------===//
//
// Reader/writer for the Ligra adjacency-graph text format used by the
// paper's artifact (so real datasets can be substituted for the synthetic
// defaults), plus a compact binary edge-list format.
//
// AdjacencyGraph format:
//   AdjacencyGraph
//   <n>
//   <m>
//   <offset 0> ... <offset n-1>
//   <edge 0> ... <edge m-1>
//
// All readers validate their input before allocating or indexing: header
// counts are cross-checked against the file size, offsets must be
// monotonically non-decreasing and bounded by m, and every target must be
// a valid vertex id. Malformed input yields `false` plus a descriptive
// message in the optional `Err` out-parameter -- never undefined behavior.
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_GEN_GRAPH_IO_H
#define ASPEN_GEN_GRAPH_IO_H

#include "util/types.h"

#include <cstdint>
#include <string>
#include <vector>

namespace aspen {

/// An edge list together with the vertex-count bound.
struct EdgeList {
  VertexId NumVertices = 0;
  std::vector<EdgePair> Edges;
};

/// Magic prefix of the checksummed binary edge format ("ASPNEDG1" LE).
constexpr uint64_t BinaryEdgesMagic = 0x31474445'4E505341ULL;

/// Parse a Ligra AdjacencyGraph file. Returns false on malformed input
/// (truncated file, counts inconsistent with the file size, non-monotonic
/// or out-of-range offsets, targets >= n) and, when `Err` is non-null,
/// stores a human-readable description of the failure.
bool readAdjacencyGraph(const std::string &Path, EdgeList &Out,
                        std::string *Err = nullptr);

/// Write a Ligra AdjacencyGraph file from (sorted or unsorted) edges.
bool writeAdjacencyGraph(const std::string &Path, VertexId N,
                         std::vector<EdgePair> Edges);

/// Binary edge list. Writes the checksummed format:
///   u64 magic "ASPNEDG1", u64 n, u64 m, u32 crc32c(n, m, payload), u32 pad,
///   m x (u32 src, u32 dst) pairs.
/// The reader also accepts the legacy headerless format (u64 n, u64 m,
/// pairs) but cross-checks m against the file size in both cases, verifies
/// the checksum when present, and rejects out-of-range endpoints.
bool readBinaryEdges(const std::string &Path, EdgeList &Out,
                     std::string *Err = nullptr);
bool writeBinaryEdges(const std::string &Path, VertexId N,
                      const std::vector<EdgePair> &Edges);

} // namespace aspen

#endif // ASPEN_GEN_GRAPH_IO_H
