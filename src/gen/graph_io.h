//===- gen/graph_io.h - Graph file input/output ----------------------------===//
//
// Reader/writer for the Ligra adjacency-graph text format used by the
// paper's artifact (so real datasets can be substituted for the synthetic
// defaults), plus a compact binary edge-list format.
//
// AdjacencyGraph format:
//   AdjacencyGraph
//   <n>
//   <m>
//   <offset 0> ... <offset n-1>
//   <edge 0> ... <edge m-1>
//
//===----------------------------------------------------------------------===//

#ifndef ASPEN_GEN_GRAPH_IO_H
#define ASPEN_GEN_GRAPH_IO_H

#include "util/types.h"

#include <string>
#include <vector>

namespace aspen {

/// An edge list together with the vertex-count bound.
struct EdgeList {
  VertexId NumVertices = 0;
  std::vector<EdgePair> Edges;
};

/// Parse a Ligra AdjacencyGraph file. Returns false on malformed input.
bool readAdjacencyGraph(const std::string &Path, EdgeList &Out);

/// Write a Ligra AdjacencyGraph file from (sorted or unsorted) edges.
bool writeAdjacencyGraph(const std::string &Path, VertexId N,
                         std::vector<EdgePair> Edges);

/// Binary edge list: u64 n, u64 m, then m (u32 src, u32 dst) pairs.
bool readBinaryEdges(const std::string &Path, EdgeList &Out);
bool writeBinaryEdges(const std::string &Path, VertexId N,
                      const std::vector<EdgePair> &Edges);

} // namespace aspen

#endif // ASPEN_GEN_GRAPH_IO_H
