//===- examples/snapshot_server.cpp - Multi-tenant serving walkthrough ----===//
//
// The serving layer end to end (DESIGN.md Section 8): a SnapshotServer
// over a hybrid sharded store, several tenants submitting analytics
// queries, and a writer streaming update batches — all through the
// admission queue. Demonstrates:
//
//   - queries running on pooled AlgoContexts with per-query snapshot
//     pins (each sees one consistent epoch, reused allocation-free),
//   - writer batches coalescing in the ingest front,
//   - load shedding: offered load beyond the queue bound is rejected
//     up front instead of growing an unbounded backlog,
//   - the final stats line: admitted/shed, epoch lag, coalesced groups.
//
//   ./example_snapshot_server [-scale 13] [-tenants 4] [-queries 200]
//                             [-batches 50] [-batchsize 2000]
//
//===----------------------------------------------------------------------===//

#include "algorithms/bfs.h"
#include "gen/generators.h"
#include "serve/server.h"
#include "util/command_line.h"
#include "util/timer.h"

#include <atomic>
#include <cstdio>
#include <thread>

using namespace aspen;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  int LogN = int(CL.getInt("scale", 13));
  size_t Tenants = size_t(CL.getInt("tenants", 4));
  size_t QueriesPer = size_t(CL.getInt("queries", 200));
  size_t Batches = size_t(CL.getInt("batches", 50));
  size_t BatchSize = size_t(CL.getInt("batchsize", 2000));
  const VertexId N = VertexId(1) << LogN;

  HybridShardedGraphStore Store(8, N, rmatGraphEdges(LogN, 6, 1));
  std::printf("store: %u vertices, %llu edges, %zu shards (hybrid)\n", N,
              static_cast<unsigned long long>(Store.acquire().numEdges()),
              Store.numShards());

  SnapshotServer::Options O;
  O.Workers = 4;
  O.ReadQueueCap = 512;
  O.WriteQueueCap = 64;
  SnapshotServer Server(Store, O);

  Timer Wall;

  // The writer streams batches through the admission queue; a full write
  // queue sheds (the writer retries), so ingest backpressure is visible
  // to the producer instead of accumulating silently.
  std::thread Writer([&] {
    RMatGenerator Stream(LogN, 777);
    for (size_t B = 0; B < Batches; ++B) {
      auto Batch = symmetrize(Stream.edges(B * BatchSize, BatchSize));
      while (!Server.submitInsert(Batch))
        std::this_thread::yield();
    }
  });

  // Tenants: each runs its queries through the shared worker pool. A
  // query pins one flat epoch (lock-free when the cache is current) and
  // runs BFS from a tenant-specific source on the leased context.
  std::vector<std::atomic<uint64_t>> Reached(Tenants);
  std::vector<std::thread> Ts;
  for (size_t T = 0; T < Tenants; ++T)
    Ts.emplace_back([&, T] {
      for (size_t Q = 0; Q < QueriesPer; ++Q) {
        bool Ok = Server.submitQuery([&, T, Q](auto &QC) {
          auto F = QC.flat();
          auto Dist =
              bfsDistances(F->view(), VertexId((T * 131 + Q) % N), QC.ctx());
          uint64_t R = 0;
          for (uint32_t D : Dist)
            R += (D != ~0u) ? 1 : 0;
          Reached[T].store(R);
        });
        if (!Ok) // shed: the read queue is full — back off and retry
          std::this_thread::yield();
      }
    });

  for (auto &T : Ts)
    T.join();
  Writer.join();
  Server.drain();
  auto St = Server.stats();
  Server.stop();

  std::printf("[%.2fs] served %llu queries, %llu write batches\n",
              Wall.elapsed(),
              static_cast<unsigned long long>(St.QueriesDone),
              static_cast<unsigned long long>(St.WritesDone));
  for (size_t T = 0; T < Tenants; ++T)
    std::printf("  tenant %zu: last BFS reached %llu vertices\n", T,
                static_cast<unsigned long long>(Reached[T].load()));
  std::printf("admission: %llu/%llu reads admitted (%llu shed), "
              "%llu/%llu writes admitted (%llu shed)\n",
              static_cast<unsigned long long>(St.Admission.AdmittedReads),
              static_cast<unsigned long long>(St.Admission.AdmittedReads +
                                              St.Admission.ShedReads),
              static_cast<unsigned long long>(St.Admission.ShedReads),
              static_cast<unsigned long long>(St.Admission.AdmittedWrites),
              static_cast<unsigned long long>(St.Admission.AdmittedWrites +
                                              St.Admission.ShedWrites),
              static_cast<unsigned long long>(St.Admission.ShedWrites));
  std::printf("ingest front: %llu batches in %llu installs (max group "
              "%llu); epoch lag mean %.2f max %llu; session waits %llu\n",
              static_cast<unsigned long long>(St.Front.Submitted),
              static_cast<unsigned long long>(St.Front.Installs),
              static_cast<unsigned long long>(St.Front.MaxGroup),
              St.QueriesDone ? double(St.EpochLagSum) / double(St.QueriesDone)
                             : 0.0,
              static_cast<unsigned long long>(St.EpochLagMax),
              static_cast<unsigned long long>(St.SessionWaits));
  std::printf("final epoch: %llu batches, %llu edges\n",
              static_cast<unsigned long long>(Store.batchSeq()),
              static_cast<unsigned long long>(
                  Store.acquire().numEdges()));
  return 0;
}
