//===- examples/hot_epoch_analytics.cpp - Flat views on hot epochs --------===//
//
// The streaming scenario flat snapshots exist for: a writer thread
// ingests batches into the sharded store while an analytics reader
// re-runs PageRank and BFS after every few batches on acquireFlat() —
// the store-maintained hot flat snapshot, refreshed in O(touched) work
// from the ingest pipeline's touched-vertex digests rather than rebuilt
// O(n) from scratch per epoch (DESIGN.md Section 4). The final stats
// line shows the refresh-vs-rebuild split the reader actually got.
//
//   ./example_hot_epoch_analytics [-scale 14] [-batches 60]
//                                 [-batchsize 150] [-paceus 3000]
//
// Batches are deliberately small relative to the vertex universe and the
// stream is paced (the paper's low-latency regime: updates arrive over
// time, they are not replayed at memory speed): the touched union of the
// epochs a query round spans must stay under universe/8 distinct sources
// for the incremental path to beat a full rebuild — beyond that the
// stats line shows rebuilds, which is the threshold working as intended.
//
//===----------------------------------------------------------------------===//

#include "algorithms/bfs.h"
#include "algorithms/pagerank.h"
#include "gen/generators.h"
#include "memory/algo_context.h"
#include "store/sharded_graph.h"
#include "util/command_line.h"
#include "util/timer.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

using namespace aspen;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  int LogN = int(CL.getInt("scale", 14));
  int Batches = int(CL.getInt("batches", 60));
  size_t BatchSize = size_t(CL.getInt("batchsize", 150));
  int PaceUs = int(CL.getInt("paceus", 3000));
  const VertexId N = VertexId(1) << LogN;

  ShardedGraphStore Store(4, N, rmatGraphEdges(LogN, 4, 1));
  std::printf("initial graph: %u vertices, %llu edges, %zu shards\n", N,
              static_cast<unsigned long long>(Store.acquire().numEdges()),
              Store.numShards());

  std::atomic<bool> Done{false};
  std::thread Writer([&] {
    RMatGenerator Stream(LogN, 777);
    Timer T;
    for (int B = 0; B < Batches; ++B) {
      auto Raw = Stream.edges(uint64_t(B) * BatchSize, BatchSize);
      Store.insertBatch(symmetrize(Raw));
      if (PaceUs > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(PaceUs));
    }
    double S = T.elapsed();
    std::printf("[writer] %d batches of %zu updates in %.3fs "
                "(%.0f directed edges/sec)\n",
                Batches, 2 * BatchSize, S,
                double(Batches) * 2 * double(BatchSize) / S);
    Done.store(true);
  });

  // Reader: every iteration acquires the hot flat epoch (O(1) vertex
  // access for the traversals below; caught up incrementally when the
  // writer has moved on) and runs PageRank + BFS on it. The AlgoContext
  // keeps steady-state queries allocation-free.
  AlgoContext Ctx;
  uint64_t Queries = 0;
  uint64_t LastSeq = ~0ull;
  uint64_t LastReached = 0;
  double LastPr = 0;
  while (!Done.load()) {
    auto FE = Store.acquireFlat();
    auto FV = FE->view();
    auto Pr = pageRank(FV, Ctx, /*MaxIters=*/5);
    auto Dist = bfsDistances(FV, 0, Ctx);
    uint64_t Reached = 0;
    for (uint32_t D : Dist)
      Reached += (D != ~0u) ? 1 : 0;
    LastReached = Reached;
    LastPr = Pr[0];
    LastSeq = FE->BatchSeq;
    ++Queries;
  }
  Writer.join();

  auto Final = Store.acquireFlat();
  auto Stats = Store.flatStats();
  std::printf("[reader] %llu PageRank+BFS rounds on hot flat epochs "
              "(last: epoch %llu, %llu reachable, pr[0]=%.3g)\n",
              static_cast<unsigned long long>(Queries),
              static_cast<unsigned long long>(LastSeq),
              static_cast<unsigned long long>(LastReached), LastPr);
  std::printf("[reader] flat maintenance: %llu refreshes, %llu rebuilds, "
              "%llu cache hits; workspace misses: %llu\n",
              static_cast<unsigned long long>(Stats.Refreshes),
              static_cast<unsigned long long>(Stats.Rebuilds),
              static_cast<unsigned long long>(Stats.Hits),
              static_cast<unsigned long long>(Ctx.missCount()));
  std::printf("final epoch %llu: %llu edges\n",
              static_cast<unsigned long long>(Final->BatchSeq),
              static_cast<unsigned long long>(Final->NumEdges));
  return 0;
}
