//===- examples/quickstart.cpp - Aspen in five minutes ----------------------===//
//
// Build a small graph, run queries on an immutable snapshot, apply
// functional batch updates, and observe that old snapshots are unaffected.
//
//   ./examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "algorithms/bfs.h"
#include "graph/graph.h"

#include <cstdio>

using namespace aspen;

int main() {
  // A small undirected graph: each undirected edge is two directed pairs.
  //   0 - 1 - 2 - 3   and   1 - 4
  std::vector<EdgePair> Edges = {{0, 1}, {1, 0}, {1, 2}, {2, 1},
                                 {2, 3}, {3, 2}, {1, 4}, {4, 1}};
  Graph G = Graph::fromEdges(/*N=*/5, Edges);
  std::printf("graph: %zu vertices, %llu directed edges\n",
              G.numVertices(),
              static_cast<unsigned long long>(G.numEdges()));

  // Point queries.
  std::printf("degree(1) = %llu\n",
              static_cast<unsigned long long>(G.degree(1)));
  auto N1 = G.findVertex(1).toVector();
  std::printf("N(1) = {");
  for (size_t I = 0; I < N1.size(); ++I)
    std::printf("%s%u", I ? ", " : "", N1[I]);
  std::printf("}\n");

  // A traversal over the snapshot.
  TreeGraphView View(G);
  auto Dist = bfsDistances(View, 0);
  for (VertexId V = 0; V < 5; ++V)
    std::printf("dist(0 -> %u) = %u\n", V, Dist[V]);

  // Functional updates: the original snapshot G is untouched.
  Graph G2 = G.insertEdges({{0, 4}, {4, 0}});
  Graph G3 = G2.deleteEdges({{2, 3}, {3, 2}});
  std::printf("after updates: G has %llu edges, G3 has %llu\n",
              static_cast<unsigned long long>(G.numEdges()),
              static_cast<unsigned long long>(G3.numEdges()));

  TreeGraphView View3(G3);
  auto Dist3 = bfsDistances(View3, 0);
  std::printf("after updates: dist(0 -> 4) = %u (was %u)\n", Dist3[4],
              Dist[4]);
  std::printf("after updates: vertex 3 %s\n",
              Dist3[3] == ~0u ? "is disconnected" : "is still reachable");
  return 0;
}
