//===- examples/streaming_analytics.cpp - Concurrent updates + queries ----===//
//
// The paper's headline scenario (Section 7.3): a writer thread ingests a
// live stream of edge updates while analytics queries run concurrently on
// consistent snapshots, never blocking each other.
//
//   ./examples/streaming_analytics [-scale 14] [-batches 50]
//
//===----------------------------------------------------------------------===//

#include "algorithms/bfs.h"
#include "algorithms/cc.h"
#include "gen/generators.h"
#include "graph/versioned_graph.h"
#include "memory/algo_context.h"
#include "util/command_line.h"
#include "util/timer.h"

#include <cstdio>
#include <thread>

using namespace aspen;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  int LogN = int(CL.getInt("scale", 14));
  int Batches = int(CL.getInt("batches", 50));
  const VertexId N = VertexId(1) << LogN;
  const size_t BatchSize = 2000;

  // Start from a moderately dense rMAT graph.
  VersionedGraph VG(Graph::fromEdges(N, rmatGraphEdges(LogN, 4, 1)));
  std::printf("initial graph: %u vertices, %llu edges\n", N,
              static_cast<unsigned long long>(
                  VG.acquire().graph().numEdges()));

  // Writer: streams rMAT update batches.
  std::atomic<bool> Done{false};
  std::thread Writer([&] {
    RMatGenerator Stream(LogN, 777);
    Timer T;
    for (int B = 0; B < Batches; ++B) {
      auto Raw = Stream.edges(uint64_t(B) * BatchSize, BatchSize);
      VG.insertEdgesBatch(symmetrize(Raw));
    }
    double S = T.elapsed();
    std::printf("[writer] %d batches of %zu updates in %.3fs "
                "(%.0f directed edges/sec)\n",
                Batches, 2 * BatchSize, S,
                double(Batches) * 2 * BatchSize / S);
    Done.store(true);
  });

  // Reader: repeatedly measures reachability from vertex 0 on the most
  // recent snapshot. Each query runs on an immutable version, so the
  // writer never blocks it and it never sees a half-applied batch. The
  // reader owns an AlgoContext workspace, so after the first query its
  // BFS runs perform no heap allocation in the analytics layer.
  AlgoContext Ctx;
  uint64_t Queries = 0;
  uint64_t LastReached = 0;
  while (!Done.load()) {
    auto V = VG.acquire();
    FlatSnapshot FS(V.graph());
    FlatGraphView FV(FS);
    auto Dist = bfsDistances(FV, 0, Ctx);
    uint64_t Reached = 0;
    for (uint32_t D : Dist)
      Reached += (D != ~0u) ? 1 : 0;
    LastReached = Reached;
    ++Queries;
  }
  Writer.join();
  std::printf("[reader] workspace misses over %llu queries: %llu "
              "(steady state: 0 per query)\n",
              static_cast<unsigned long long>(Queries),
              static_cast<unsigned long long>(Ctx.missCount()));

  auto Final = VG.acquire();
  std::printf("[reader] ran %llu BFS queries concurrently; "
              "final reachable set: %llu of %u vertices\n",
              static_cast<unsigned long long>(Queries),
              static_cast<unsigned long long>(LastReached), N);
  std::printf("final graph: %llu edges across %llu versions published\n",
              static_cast<unsigned long long>(Final.graph().numEdges()),
              static_cast<unsigned long long>(Final.timestamp()));
  return 0;
}
