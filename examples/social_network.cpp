//===- examples/social_network.cpp - Local queries on a social graph ------===//
//
// The workloads the paper's introduction motivates: low-latency local
// queries on an evolving social network - friend-of-friend
// recommendations (2-hop), community detection around a user
// (Local-Cluster), and influence scores (betweenness).
//
//   ./examples/social_network [-scale 15] [-user 12]
//
//===----------------------------------------------------------------------===//

#include "algorithms/bc.h"
#include "algorithms/local_cluster.h"
#include "algorithms/two_hop.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "util/command_line.h"
#include "util/timer.h"

#include <algorithm>
#include <cstdio>

using namespace aspen;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  int LogN = int(CL.getInt("scale", 15));
  const VertexId N = VertexId(1) << LogN;
  VertexId User = VertexId(CL.getInt("user", 12)) % N;

  // rMAT graphs have the heavy-tailed degree structure of social networks.
  Graph G = Graph::fromEdges(N, rmatGraphEdges(LogN, 8, 42));
  TreeGraphView View(G);
  std::printf("social network: %zu users, %llu follow edges\n",
              G.numVertices(),
              static_cast<unsigned long long>(G.numEdges()));
  std::printf("user %u has %llu friends\n", User,
              static_cast<unsigned long long>(G.degree(User)));

  // Friend recommendations: friends-of-friends who aren't friends yet.
  Timer T;
  auto Hop2 = twoHop(View, User);
  auto Friends = G.findVertex(User).toVector();
  std::vector<VertexId> Recs;
  for (VertexId V : Hop2)
    if (V != User && !std::binary_search(Friends.begin(), Friends.end(), V))
      Recs.push_back(V);
  std::printf("friend recommendations: %zu candidates within 2 hops "
              "(%.2fms)\n",
              Recs.size(), T.elapsed() * 1e3);

  // Community around the user via local clustering.
  T.reset();
  auto Community = localCluster(View, User, 1e-6, 10);
  std::printf("community around user %u: %zu members, conductance %.4f "
              "(%.2fms)\n",
              User, Community.Cluster.size(), Community.Conductance,
              T.elapsed() * 1e3);

  // Influence: betweenness contributions from this user's shortest paths.
  T.reset();
  FlatSnapshot FS(G);
  FlatGraphView FV(FS);
  auto Scores = bc(FV, User);
  VertexId Top = 0;
  for (VertexId V = 1; V < N; ++V)
    if (Scores[V] > Scores[Top])
      Top = V;
  std::printf("most load-bearing user on paths from %u: user %u "
              "(score %.1f) (%.2fms)\n",
              User, Top, Scores[Top], T.elapsed() * 1e3);

  // The network evolves: the user adds friends; recommendations update on
  // the new snapshot while the old one remains queryable.
  std::vector<EdgePair> NewFriends;
  for (size_t I = 0; I < std::min<size_t>(5, Recs.size()); ++I) {
    NewFriends.push_back({User, Recs[I]});
    NewFriends.push_back({Recs[I], User});
  }
  Graph G2 = G.insertEdges(NewFriends);
  std::printf("after following %zu recommendations: degree %llu -> %llu\n",
              NewFriends.size() / 2,
              static_cast<unsigned long long>(G.degree(User)),
              static_cast<unsigned long long>(G2.degree(User)));
  return 0;
}
