//===- examples/historical_versions.cpp - Time-travel over versions -------===//
//
// The paper notes (Section 8.1) that functional data structures are
// "particularly well-suited" to historical queries: keeping any number of
// persistent versions is just keeping their roots. This example retains a
// version per day of a simulated evolving network and answers queries
// against arbitrary past days.
//
//   ./examples/historical_versions [-scale 13] [-days 14]
//
//===----------------------------------------------------------------------===//

#include "algorithms/cc.h"
#include "gen/generators.h"
#include "graph/graph.h"
#include "util/command_line.h"

#include <cstdio>
#include <vector>

using namespace aspen;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  int LogN = int(CL.getInt("scale", 13));
  int Days = int(CL.getInt("days", 14));
  const VertexId N = VertexId(1) << LogN;

  // Day 0: a sparse network. Each day adds edges; every version is kept.
  std::vector<Graph> History;
  History.push_back(Graph::fromEdges(N, rmatGraphEdges(LogN, 1, 7)));
  RMatGenerator Stream(LogN, 1234);
  for (int Day = 1; Day < Days; ++Day) {
    auto Daily = symmetrize(Stream.edges(uint64_t(Day) * 4096, 4096));
    History.push_back(History.back().insertEdges(Daily));
  }

  std::printf("%-6s %14s %18s %16s\n", "day", "edges",
              "largest component", "isolated users");
  for (int Day = 0; Day < Days; ++Day) {
    const Graph &G = History[Day];
    TreeGraphView View(G);
    auto Labels = connectedComponents(View);
    // Component sizes.
    std::vector<uint32_t> Count(N, 0);
    for (VertexId V = 0; V < N; ++V)
      ++Count[Labels[V]];
    uint32_t Largest = 0;
    for (uint32_t C : Count)
      Largest = std::max(Largest, C);
    uint64_t Isolated = 0;
    for (VertexId V = 0; V < N; ++V)
      Isolated += G.degree(V) == 0 ? 1 : 0;
    std::printf("%-6d %14llu %18u %16llu\n", Day,
                static_cast<unsigned long long>(G.numEdges()), Largest,
                static_cast<unsigned long long>(Isolated));
  }

  // Differential query across versions: edges gained since day 0 at a
  // sample of vertices (pure reads on two snapshots).
  const Graph &First = History.front(), &Last = History.back();
  uint64_t Gained = 0;
  for (VertexId V = 0; V < N; V += N / 8)
    Gained += Last.degree(V) - First.degree(V);
  std::printf("\nsampled vertices gained %llu edges between day 0 and "
              "day %d;\nall %d versions remain live and queryable "
              "(total structure is shared).\n",
              static_cast<unsigned long long>(Gained), Days - 1, Days);
  return 0;
}
