//===- examples/sharded_ingest.cpp - Multi-writer sharded ingest ----------===//
//
// The sharded versioned store: several writer threads ingest edge batches
// concurrently into a hash-partitioned store while an analytics reader
// pins epoch-consistent cross-shard snapshots. Every acquired epoch is a
// whole-batch boundary — the reader audits that invariant on every query
// — and the same algorithms that run on a single-store snapshot run
// unmodified on the composed sharded view.
//
//   ./examples/sharded_ingest [-scale 14] [-shards 4] [-writers 2]
//                             [-batches 40]
//
//===----------------------------------------------------------------------===//

#include "algorithms/cc.h"
#include "gen/generators.h"
#include "store/sharded_graph.h"
#include "util/command_line.h"
#include "util/timer.h"

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

using namespace aspen;

int main(int Argc, char **Argv) {
  CommandLine CL(Argc, Argv);
  int LogN = int(CL.getInt("scale", 14));
  size_t Shards = size_t(CL.getInt("shards", 4));
  int Writers = int(CL.getInt("writers", 2));
  int Batches = int(CL.getInt("batches", 40));
  const VertexId N = VertexId(1) << LogN;
  const size_t BatchSize = 5000;

  ShardedGraphStore Store(Shards, N, rmatGraphEdges(LogN, 4, 1));
  std::printf("initial store: %u vertices across %zu shards, %llu edges\n",
              N, Store.numShards(),
              static_cast<unsigned long long>(Store.acquire().numEdges()));

  // Writers: each ingests its slice of the update stream. Batches are
  // applied atomically across shards; writers overlap wherever their
  // batches touch disjoint shards, and each batch's per-shard merges run
  // in parallel on the worker pool.
  std::atomic<bool> Done{false};
  std::vector<std::thread> Ws;
  Timer Ingest;
  for (int W = 0; W < Writers; ++W)
    Ws.emplace_back([&, W] {
      RMatGenerator Stream(LogN, 900 + uint64_t(W));
      for (int B = W; B < Batches; B += Writers) {
        auto Raw = Stream.edges(uint64_t(B) * BatchSize, BatchSize);
        Store.insertBatch(symmetrize(Raw));
      }
    });

  // Reader: connected components over the composed cross-shard view,
  // plus the consistency audit — per-shard edge counts must sum to the
  // epoch's aggregate on every single acquire.
  uint64_t Queries = 0, Components = 0, Torn = 0;
  std::thread Reader([&] {
    while (!Done.load()) {
      auto E = Store.acquire();
      uint64_t ShardSum = 0;
      for (size_t S = 0; S < E.numShards(); ++S)
        ShardSum += E.shard(S).numEdges();
      if (ShardSum != E.numEdges())
        ++Torn;
      auto Labels = connectedComponents(E.view());
      uint64_t Roots = 0;
      for (size_t V = 0; V < Labels.size(); ++V)
        Roots += Labels[V] == VertexId(V) ? 1 : 0;
      Components = Roots;
      ++Queries;
    }
  });

  for (auto &T : Ws)
    T.join();
  double S = Ingest.elapsed();
  Done.store(true);
  Reader.join();

  auto Final = Store.acquire();
  std::printf("[writers] %d threads, %d batches of %zu updates in %.3fs "
              "(%.0f directed edges/sec)\n",
              Writers, Batches, 2 * BatchSize, S,
              double(Batches) * 2 * BatchSize / S);
  std::printf("[reader] %llu component queries on pinned epochs, "
              "%llu torn epochs observed (must be 0), last count: %llu\n",
              static_cast<unsigned long long>(Queries),
              static_cast<unsigned long long>(Torn),
              static_cast<unsigned long long>(Components));
  std::printf("final store: %llu edges at batch boundary %llu\n",
              static_cast<unsigned long long>(Final.numEdges()),
              static_cast<unsigned long long>(Final.batchSeq()));
  return Torn == 0 ? 0 : 1;
}
